//! A minimal structured-tracing layer: leveled events and timed spans
//! with key/value fields, dispatched to a process-global sink.
//!
//! The build is offline, so this is an in-tree shim of the `tracing`
//! idea rather than the crate: the [`span!`](crate::span) and
//! [`event!`](crate::event) macros check [`enabled`] *before* evaluating
//! their field expressions, so with tracing off (the default) the cost
//! of an instrumentation site is one relaxed atomic load.
//!
//! The level comes from [`set_level`] or, lazily on first use, the
//! `TRAJSIM_LOG` environment variable (`off`, `error`, `warn`, `info`,
//! `debug`, `trace`; default `off`). Records go to the sink installed
//! with [`set_sink`] — usually a [`JsonLinesSink`].

use std::fmt;
use std::io::Write;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Verbosity levels, coarsest first. `Off` disables everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Tracing disabled.
    Off = 0,
    /// Unrecoverable problems.
    Error = 1,
    /// Suspicious but non-fatal conditions.
    Warn = 2,
    /// Coarse lifecycle events (one per query / pool run).
    Info = 3,
    /// Per-stage detail (filter/refine spans).
    Debug = 4,
    /// Everything, including per-candidate events.
    Trace = 5,
}

impl Level {
    fn from_u8(v: u8) -> Level {
        match v {
            1 => Level::Error,
            2 => Level::Warn,
            3 => Level::Info,
            4 => Level::Debug,
            5 => Level::Trace,
            _ => Level::Off,
        }
    }

    /// The level's lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

impl std::str::FromStr for Level {
    type Err = String;

    fn from_str(s: &str) -> Result<Level, String> {
        match s.to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => Ok(Level::Off),
            "error" => Ok(Level::Error),
            "warn" | "warning" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            "trace" => Ok(Level::Trace),
            other => Err(format!("unknown log level {other:?}")),
        }
    }
}

/// A field value attached to an event or span.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<i32> for FieldValue {
    fn from(v: i32) -> Self {
        FieldValue::I64(i64::from(v))
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl From<&String> for FieldValue {
    fn from(v: &String) -> Self {
        FieldValue::Str(v.clone())
    }
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

/// One record handed to the sink: an instantaneous event or the close of
/// a timed span.
#[derive(Debug)]
pub struct Record<'a> {
    /// Severity.
    pub level: Level,
    /// Event or span name (dotted taxonomy, e.g. `knn.query`).
    pub name: &'a str,
    /// Wall-clock duration for span closes, `None` for plain events.
    pub elapsed_ns: Option<u64>,
    /// Key/value fields.
    pub fields: &'a [(&'static str, FieldValue)],
}

/// Receives records. Implementations must be cheap enough for the chosen
/// level and are responsible for their own synchronization.
pub trait Sink: Send + Sync {
    /// Handles one record.
    fn emit(&self, record: &Record<'_>);
}

/// `u8::MAX` = "not yet resolved from the environment".
static LEVEL: AtomicU8 = AtomicU8::new(u8::MAX);

static SINK: RwLock<Option<Arc<dyn Sink>>> = RwLock::new(None);

/// The current level, resolving `TRAJSIM_LOG` on first call.
///
/// The lazy resolution installs its result with a compare-exchange
/// against the "unresolved" sentinel, so exactly one writer wins: a
/// concurrent [`set_level`] (or another thread's first use) can never be
/// clobbered by a stale environment read.
pub fn level() -> Level {
    let raw = LEVEL.load(Ordering::Relaxed);
    if raw != u8::MAX {
        return Level::from_u8(raw);
    }
    let resolved = std::env::var("TRAJSIM_LOG")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(Level::Off);
    match LEVEL.compare_exchange(
        u8::MAX,
        resolved as u8,
        Ordering::Relaxed,
        Ordering::Relaxed,
    ) {
        Ok(_) => resolved,
        Err(installed) => Level::from_u8(installed),
    }
}

/// Puts the level back into the "unresolved from the environment" state
/// (tests of the lazy-init path; the CLI and library callers never need
/// this).
#[doc(hidden)]
pub fn reset_level_to_unresolved() {
    LEVEL.store(u8::MAX, Ordering::SeqCst);
}

/// Overrides the level (wins over `TRAJSIM_LOG`).
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Whether records at `l` are currently emitted.
#[inline]
pub fn enabled(l: Level) -> bool {
    l != Level::Off && l <= level()
}

/// Installs (or with `None` removes) the global sink.
pub fn set_sink(sink: Option<Arc<dyn Sink>>) {
    *SINK.write().expect("sink lock") = sink;
}

/// Sends an event straight to the sink if `level` is enabled. Prefer the
/// [`event!`](crate::event) macro, which skips field construction when
/// disabled.
pub fn emit(level: Level, name: &str, fields: &[(&'static str, FieldValue)]) {
    if !enabled(level) {
        return;
    }
    if let Some(sink) = SINK.read().expect("sink lock").as_ref() {
        sink.emit(&Record {
            level,
            name,
            elapsed_ns: None,
            fields,
        });
    }
}

/// Sends a span-shaped record (one carrying `elapsed_ns`) straight to
/// the sink if `level` is enabled — for subsystems that measure a
/// duration themselves (stage stopwatches, worker busy time) instead of
/// holding a [`Span`] open across the work.
pub fn emit_span(level: Level, name: &str, elapsed_ns: u64, fields: &[(&'static str, FieldValue)]) {
    if !enabled(level) {
        return;
    }
    if let Some(sink) = SINK.read().expect("sink lock").as_ref() {
        sink.emit(&Record {
            level,
            name,
            elapsed_ns: Some(elapsed_ns),
            fields,
        });
    }
}

/// A small dense id for the calling thread, assigned in first-use order
/// (the main thread is not guaranteed id 0). Profile exporters key
/// Chrome-trace `tid` fields and per-worker stacks on this; unlike
/// `std::thread::ThreadId` it is stable, compact, and numeric.
pub fn thread_id() -> u64 {
    use std::cell::Cell;
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    thread_local! {
        static ID: Cell<u64> = const { Cell::new(u64::MAX) };
    }
    ID.with(|id| {
        if id.get() == u64::MAX {
            id.set(NEXT.fetch_add(1, Ordering::Relaxed));
        }
        id.get()
    })
}

/// A timed span: emits a record with `elapsed_ns` when dropped. Created
/// by the [`span!`](crate::span) macro; a disabled span is inert.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    level: Level,
    start: Option<Instant>,
    fields: Vec<(&'static str, FieldValue)>,
}

impl Span {
    /// A live span; used by the macro once `enabled` passed.
    pub fn new(level: Level, name: &'static str, fields: Vec<(&'static str, FieldValue)>) -> Span {
        Span {
            name,
            level,
            start: Some(Instant::now()),
            fields,
        }
    }

    /// An inert span (the disabled arm of the macro).
    pub fn disabled() -> Span {
        Span {
            name: "",
            level: Level::Off,
            start: None,
            fields: Vec::new(),
        }
    }

    /// Attaches a field after creation (results discovered mid-span).
    pub fn record(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if self.start.is_some() {
            self.fields.push((key, value.into()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        // Re-check: the level may have dropped while the span was open.
        if !enabled(self.level) {
            return;
        }
        if let Some(sink) = SINK.read().expect("sink lock").as_ref() {
            sink.emit(&Record {
                level: self.level,
                name: self.name,
                elapsed_ns: Some(start.elapsed().as_nanos() as u64),
                fields: &self.fields,
            });
        }
    }
}

/// A sink writing one JSON object per record per line:
/// `{"ts_us": ..., "level": "...", "name": "...", "elapsed_ns": ...,
/// "fields": {...}}`.
pub struct JsonLinesSink {
    out: Mutex<Box<dyn Write + Send>>,
}

impl fmt::Debug for JsonLinesSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonLinesSink").finish_non_exhaustive()
    }
}

impl JsonLinesSink {
    /// A sink over any writer.
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        JsonLinesSink {
            out: Mutex::new(out),
        }
    }

    /// A sink appending to standard error.
    pub fn stderr() -> Self {
        JsonLinesSink::new(Box::new(std::io::stderr()))
    }

    /// A sink writing (truncating) to `path`.
    pub fn to_file(path: &std::path::Path) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(JsonLinesSink::new(Box::new(std::io::BufWriter::new(file))))
    }
}

impl Sink for JsonLinesSink {
    fn emit(&self, record: &Record<'_>) {
        let ts_us = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        let mut fields = serde_json::Map::new();
        for (k, v) in record.fields {
            let value = match v {
                FieldValue::U64(x) => serde_json::Value::from(*x),
                FieldValue::I64(x) => serde_json::Value::from(*x),
                FieldValue::F64(x) => serde_json::Value::from(*x),
                FieldValue::Bool(x) => serde_json::Value::from(*x),
                FieldValue::Str(x) => serde_json::Value::from(x.as_str()),
            };
            fields.insert((*k).to_string(), value);
        }
        let mut obj = serde_json::Map::new();
        obj.insert("ts_us".into(), serde_json::Value::from(ts_us));
        obj.insert(
            "level".into(),
            serde_json::Value::from(record.level.as_str()),
        );
        obj.insert("name".into(), serde_json::Value::from(record.name));
        if let Some(ns) = record.elapsed_ns {
            obj.insert("elapsed_ns".into(), serde_json::Value::from(ns));
        }
        obj.insert("fields".into(), serde_json::Value::Object(fields));
        let line =
            serde_json::to_string(&serde_json::Value::Object(obj)).expect("serialize record");
        let mut out = self.out.lock().expect("sink writer lock");
        // Tracing must never take the process down; drop the line on I/O
        // errors (e.g. a closed pipe).
        let _ = writeln!(out, "{line}");
        let _ = out.flush();
    }
}

/// Opens a [`Span`] if its level is enabled; fields are
/// `key = value` pairs evaluated only when enabled.
///
/// ```
/// use trajsim_obs::{span, Level};
/// let _span = span!(Level::Debug, "knn.query", k = 5usize, engine = "seq-scan");
/// ```
#[macro_export]
macro_rules! span {
    ($lvl:expr, $name:expr $(, $k:ident = $v:expr)* $(,)?) => {
        if $crate::enabled($lvl) {
            $crate::Span::new(
                $lvl,
                $name,
                vec![$((stringify!($k), $crate::FieldValue::from($v))),*],
            )
        } else {
            $crate::Span::disabled()
        }
    };
}

/// Emits an instantaneous event if its level is enabled; same field
/// grammar as [`span!`](crate::span).
#[macro_export]
macro_rules! event {
    ($lvl:expr, $name:expr $(, $k:ident = $v:expr)* $(,)?) => {
        if $crate::enabled($lvl) {
            $crate::emit(
                $lvl,
                $name,
                &[$((stringify!($k), $crate::FieldValue::from($v))),*],
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// Collects records for assertions.
    #[derive(Default)]
    struct Capture {
        lines: Mutex<Vec<String>>,
        count: AtomicUsize,
    }

    impl Sink for Capture {
        fn emit(&self, r: &Record<'_>) {
            self.count.fetch_add(1, Ordering::SeqCst);
            let fields: Vec<String> = r.fields.iter().map(|(k, v)| format!("{k}={v}")).collect();
            self.lines.lock().unwrap().push(format!(
                "{} {} {:?} [{}]",
                r.level.as_str(),
                r.name,
                r.elapsed_ns.is_some(),
                fields.join(", ")
            ));
        }
    }

    /// The level and sink are process globals; serialize the tests that
    /// touch them.
    static TRACE_LOCK: Mutex<()> = Mutex::new(());

    fn with_capture(level: Level, f: impl FnOnce(&Capture)) {
        let _lock = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let capture = Arc::new(Capture::default());
        set_level(level);
        set_sink(Some(capture.clone() as Arc<dyn Sink>));
        f(&capture);
        set_sink(None);
        set_level(Level::Off);
    }

    #[test]
    fn events_respect_the_level() {
        with_capture(Level::Info, |cap| {
            crate::event!(Level::Info, "coarse", n = 3usize);
            crate::event!(Level::Debug, "fine");
            assert_eq!(cap.count.load(Ordering::SeqCst), 1);
            let lines = cap.lines.lock().unwrap();
            assert_eq!(lines[0], "info coarse false [n=3]");
        });
    }

    #[test]
    fn spans_emit_elapsed_on_drop() {
        with_capture(Level::Debug, |cap| {
            {
                let mut s = crate::span!(Level::Debug, "stage", filter = "histogram");
                s.record("pruned", 7usize);
            }
            let lines = cap.lines.lock().unwrap();
            assert_eq!(
                lines.as_slice(),
                ["debug stage true [filter=histogram, pruned=7]"]
            );
        });
    }

    #[test]
    fn disabled_spans_are_inert() {
        with_capture(Level::Off, |cap| {
            let _s = crate::span!(Level::Error, "never");
            drop(_s);
            assert_eq!(cap.count.load(Ordering::SeqCst), 0);
        });
    }

    #[test]
    fn level_parses_and_round_trips() {
        for (s, l) in [
            ("off", Level::Off),
            ("ERROR", Level::Error),
            ("warn", Level::Warn),
            ("Info", Level::Info),
            ("debug", Level::Debug),
            ("trace", Level::Trace),
        ] {
            assert_eq!(s.parse::<Level>().unwrap(), l);
        }
        assert!("loud".parse::<Level>().is_err());
        assert_eq!(Level::Debug.as_str(), "debug");
    }

    #[test]
    fn lazy_init_never_clobbers_a_concurrent_set_level() {
        let _lock = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // Race N readers doing the lazy environment resolution against
        // one writer calling set_level. With the compare-exchange install
        // the writer always wins; the old unconditional store could land
        // after the set_level and silently drop it.
        for _ in 0..200 {
            reset_level_to_unresolved();
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    scope.spawn(|| {
                        let _ = level();
                    });
                }
                scope.spawn(|| set_level(Level::Debug));
            });
            assert_eq!(level(), Level::Debug, "set_level lost the race");
        }
        set_level(Level::Off);
    }

    #[test]
    fn concurrent_first_uses_agree_on_one_level() {
        let _lock = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset_level_to_unresolved();
        let seen: Vec<Level> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8).map(|_| scope.spawn(level)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Every thread must observe the same resolved level.
        assert!(
            seen.windows(2).all(|w| w[0] == w[1]),
            "levels diverged: {seen:?}"
        );
        set_level(Level::Off);
    }

    #[test]
    fn emit_span_carries_the_measured_elapsed() {
        with_capture(Level::Debug, |cap| {
            emit_span(Level::Debug, "stage.manual", 1234, &[("n", 2usize.into())]);
            emit_span(Level::Trace, "stage.hidden", 1, &[]);
            assert_eq!(cap.count.load(Ordering::SeqCst), 1);
            let lines = cap.lines.lock().unwrap();
            assert_eq!(lines[0], "debug stage.manual true [n=2]");
        });
    }

    #[test]
    fn thread_ids_are_distinct_and_stable() {
        let mine = thread_id();
        assert_eq!(mine, thread_id(), "id must be stable within a thread");
        let other = std::thread::spawn(thread_id).join().unwrap();
        assert_ne!(mine, other, "different threads get different ids");
    }

    #[test]
    fn json_lines_sink_writes_parseable_lines() {
        let _lock = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let path = std::env::temp_dir().join("trajsim-obs-sink-test.jsonl");
        set_level(Level::Trace);
        set_sink(Some(Arc::new(JsonLinesSink::to_file(&path).unwrap())));
        crate::event!(Level::Info, "hello", engine = "PS2", ok = true, x = 1.5);
        {
            let _s = crate::span!(Level::Trace, "timed");
        }
        set_sink(None); // flush via drop
        set_level(Level::Off);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(
            first.get("name"),
            Some(&serde_json::Value::String("hello".into()))
        );
        let second = serde_json::from_str(lines[1]).unwrap();
        assert!(second.get("elapsed_ns").is_some());
        std::fs::remove_file(&path).ok();
    }
}
