//! The telemetry endpoint: a std-only HTTP server on a background
//! thread exposing the live metrics [`Registry`].
//!
//! Routes:
//!
//! | route       | payload                                                  |
//! |-------------|----------------------------------------------------------|
//! | `/metrics`  | Prometheus text exposition of the registry ([`crate::exposition::render`]) |
//! | `/healthz`  | JSON liveness: status, uptime, query count, RSS, threads |
//! | `/timeline` | the installed [`crate::timeline::Timeline`] ring as JSON |
//!
//! The server is deliberately minimal: one `std::net::TcpListener`, a
//! blocking accept loop on one background thread, one request per
//! connection (`Connection: close`), no TLS, no keep-alive. That is
//! exactly enough for a Prometheus scraper or `curl`, costs nothing on
//! the query path (scrape work happens on the server thread), and adds
//! no dependencies. [`ServerHandle::shutdown`] is graceful by
//! construction: requests are handled sequentially on the accept
//! thread, so joining it completes any in-flight scrape before the
//! process exits.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::metrics::Registry;
use crate::{exposition, process, timeline};

/// A running telemetry server. Dropping the handle without calling
/// [`ServerHandle::shutdown`] leaves the daemon thread running until
/// process exit (harmless: it only ever reads the registry).
#[derive(Debug)]
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Mutex<Option<JoinHandle<()>>>,
}

impl ServerHandle {
    /// The address actually bound — with a `:0` request this carries
    /// the ephemeral port the OS picked.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread. Any request
    /// already accepted is answered first; later connections are
    /// refused (nothing is listening). Idempotent.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop: it re-checks the flag per connection,
        // so one throwaway connect gets it past the blocking accept.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(thread) = self.thread.lock().expect("server thread lock").take() {
            let _ = thread.join();
        }
    }
}

/// Binds `addr` (e.g. `127.0.0.1:9184`; port `0` for an ephemeral one)
/// and serves the telemetry routes for `registry` on a background
/// thread until [`ServerHandle::shutdown`].
///
/// # Errors
///
/// Fails with a description if the address cannot be parsed or bound.
pub fn serve(addr: &str, registry: &'static Registry) -> Result<ServerHandle, String> {
    // Anchor uptime no later than server start.
    process::start_instant();
    let listener =
        TcpListener::bind(addr).map_err(|e| format!("cannot bind metrics endpoint {addr}: {e}"))?;
    let bound = listener
        .local_addr()
        .map_err(|e| format!("cannot resolve bound metrics address: {e}"))?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let stop = Arc::clone(&shutdown);
    let thread = std::thread::Builder::new()
        .name("trajsim-metrics".to_string())
        .spawn(move || {
            for conn in listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = conn {
                    // One request per connection; errors (half-open
                    // sockets, bad requests) only drop that connection.
                    let _ = handle_connection(stream, registry);
                }
            }
        })
        .map_err(|e| format!("cannot spawn metrics server thread: {e}"))?;
    Ok(ServerHandle {
        addr: bound,
        shutdown,
        thread: Mutex::new(Some(thread)),
    })
}

/// Reads one HTTP/1.x request line (headers are read and ignored) and
/// writes the matching response.
fn handle_connection(mut stream: TcpStream, registry: &Registry) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    let mut buf = [0u8; 4096];
    let mut filled = 0usize;
    // Read until the end of headers (or the buffer is full — more than
    // enough for any scraper's GET).
    loop {
        let n = stream.read(&mut buf[filled..])?;
        if n == 0 {
            break;
        }
        filled += n;
        if buf[..filled].windows(4).any(|w| w == b"\r\n\r\n") || filled == buf.len() {
            break;
        }
    }
    let request = String::from_utf8_lossy(&buf[..filled]);
    let mut parts = request.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let path = path.split('?').next().unwrap_or(path);
    if method != "GET" {
        return respond(
            &mut stream,
            405,
            "text/plain; charset=utf-8",
            "method not allowed\n",
        );
    }
    match path {
        "/metrics" => {
            process::update(registry);
            let body = exposition::render(registry);
            respond(
                &mut stream,
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            )
        }
        "/healthz" => {
            process::update(registry);
            let queries = registry
                .counter_values()
                .get("knn.queries")
                .copied()
                .unwrap_or(0);
            let doc = serde_json::json!({
                "status": "ok",
                "uptime_seconds": process::uptime_seconds(),
                "queries": queries,
                "rss_bytes": process::rss_bytes().unwrap_or(0),
                "threads": process::thread_count().unwrap_or(0),
            });
            respond(
                &mut stream,
                200,
                "application/json",
                &format!("{}\n", serde_json::to_string(&doc).unwrap_or_default()),
            )
        }
        "/timeline" => {
            let doc = match timeline::current() {
                Some(tl) => tl.to_json(registry),
                None => serde_json::json!({
                    "format": timeline::TIMELINE_FORMAT,
                    "version": timeline::TIMELINE_VERSION,
                    "installed": false,
                }),
            };
            respond(
                &mut stream,
                200,
                "application/json",
                &format!("{}\n", serde_json::to_string(&doc).unwrap_or_default()),
            )
        }
        _ => respond(&mut stream, 404, "text/plain; charset=utf-8", "not found\n"),
    }
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    let header = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// A one-shot HTTP GET against `addr` (e.g. `127.0.0.1:9184`) returning
/// `(status, body)` — the client half of the protocol the server
/// speaks, used by `trajsim watch` and the tests. std-only, no TLS.
///
/// # Errors
///
/// Fails with a description on connect/read errors or an unparsable
/// response.
pub fn http_get(addr: &str, path: &str, timeout: Duration) -> Result<(u16, String), String> {
    use std::net::ToSocketAddrs;
    let sock = addr
        .to_socket_addrs()
        .map_err(|e| format!("bad address {addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("address {addr} resolves to nothing"))?;
    let mut stream = TcpStream::connect_timeout(&sock, timeout)
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| e.to_string())?;
    stream
        .set_write_timeout(Some(timeout))
        .map_err(|e| e.to_string())?;
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("cannot send request to {addr}: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("cannot read response from {addr}: {e}"))?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("malformed response from {addr}"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line from {addr}"))?;
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exposition::parse;

    fn leaked_registry() -> &'static Registry {
        Box::leak(Box::new(Registry::new()))
    }

    #[test]
    fn serves_metrics_healthz_timeline_and_404() {
        let r = leaked_registry();
        r.counter("knn.queries").add(9);
        r.histogram("knn.query_ns").record(123_456);
        let server = serve("127.0.0.1:0", r).expect("bind ephemeral");
        let addr = server.addr().to_string();
        let t = Duration::from_secs(5);

        let (status, body) = http_get(&addr, "/metrics", t).unwrap();
        assert_eq!(status, 200);
        let scrape = parse(&body).expect("valid exposition");
        assert_eq!(scrape.sample_u64("knn_queries_total"), Some(9));
        assert_eq!(scrape.histograms["knn_query_ns"].count(), 1);
        // The scrape refreshed the process gauges into the registry.
        assert!(scrape.samples.contains_key("process_uptime_seconds"));

        let (status, body) = http_get(&addr, "/healthz", t).unwrap();
        assert_eq!(status, 200);
        let doc: serde_json::Value = serde_json::from_str(body.trim()).unwrap();
        assert_eq!(doc.get("status").and_then(|v| v.as_str()), Some("ok"));
        assert_eq!(doc.get("queries").and_then(|v| v.as_u64()), Some(9));

        let (status, body) = http_get(&addr, "/timeline", t).unwrap();
        assert_eq!(status, 200);
        let doc: serde_json::Value = serde_json::from_str(body.trim()).unwrap();
        assert_eq!(
            doc.get("format").and_then(|v| v.as_str()),
            Some(timeline::TIMELINE_FORMAT)
        );

        let (status, _) = http_get(&addr, "/nope", t).unwrap();
        assert_eq!(status, 404);

        server.shutdown();
        // After shutdown nothing is listening.
        assert!(http_get(&addr, "/metrics", Duration::from_millis(300)).is_err());
    }

    #[test]
    fn scrape_agrees_with_snapshot_json_counters() {
        let r = leaked_registry();
        r.counter("knn.edr_computed").add(41);
        r.gauge("batch.size").set(16);
        let server = serve("127.0.0.1:0", r).unwrap();
        let (_, body) = http_get(
            &server.addr().to_string(),
            "/metrics",
            Duration::from_secs(5),
        )
        .unwrap();
        server.shutdown();
        let scrape = parse(&body).unwrap();
        let snap = r.snapshot_json();
        for (name, value) in snap.get("counters").unwrap().as_object().unwrap().iter() {
            assert_eq!(
                scrape.sample_u64(&crate::exposition::counter_name(name)),
                value.as_u64(),
                "counter {name}"
            );
        }
        for (name, value) in snap.get("gauges").unwrap().as_object().unwrap().iter() {
            let pname = crate::exposition::sanitize_name(name);
            assert_eq!(
                scrape.samples.get(&pname).copied().map(|v| v as i64),
                value.as_i64(),
                "gauge {name}"
            );
        }
    }

    #[test]
    fn shutdown_is_idempotent_and_rejects_non_get() {
        let r = leaked_registry();
        let server = serve("127.0.0.1:0", r).unwrap();
        let addr = server.addr();
        // A hand-rolled POST gets a 405 without killing the server.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"POST /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut resp = String::new();
        stream.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.1 405"), "{resp}");
        let (status, _) = http_get(&addr.to_string(), "/metrics", Duration::from_secs(5)).unwrap();
        assert_eq!(status, 200);
        server.shutdown();
        server.shutdown();
    }
}
