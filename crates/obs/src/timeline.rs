//! Metrics time series: a bounded ring of interval rollups.
//!
//! A [`Timeline`] periodically snapshots a [`Registry`] and stores the
//! *delta* since the previous snapshot — counter increments, gauge
//! last-values, histogram bucket increments — as one [`Interval`] in a
//! fixed-capacity ring. When the ring is full the oldest interval is
//! folded into a cumulative `base`, so the invariant
//!
//! ```text
//! base + Σ(ring interval deltas) == current cumulative registry state
//! ```
//!
//! holds at every export, including after arbitrary wrap-around. The
//! exported JSON (`{"format": "trajsim-metrics-timeline", ...}`) is the
//! live-endpoint payload the ROADMAP's serve mode will stream; today the
//! CLI writes it next to `--metrics-out`.
//!
//! Ticking is driven from the `finish_query` chokepoint via the free
//! function [`note_query`]: with no timeline installed it costs one
//! relaxed atomic load, mirroring the tracing sink's `enabled()` gate.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use crate::metrics::{self, HistogramState, Registry};

/// The timeline JSON `format` tag.
pub const TIMELINE_FORMAT: &str = "trajsim-metrics-timeline";
/// The timeline JSON schema version.
pub const TIMELINE_VERSION: u64 = 1;

/// Default number of queries per rollup interval.
pub const DEFAULT_INTERVAL_QUERIES: u64 = 64;
/// Default ring capacity (completed intervals retained in full).
pub const DEFAULT_CAPACITY: usize = 64;

/// A cumulative registry snapshot (raw values, not JSON).
#[derive(Debug, Clone, Default)]
struct Snapshot {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, HistogramState>,
}

impl Snapshot {
    fn capture(registry: &Registry) -> Self {
        Snapshot {
            counters: registry.counter_values(),
            gauges: registry.gauge_values(),
            histograms: registry.histogram_values(),
        }
    }
}

/// One histogram's increment over an interval.
#[derive(Debug, Clone)]
struct HistogramDelta {
    count: u64,
    sum: u64,
    buckets: Vec<u64>,
}

/// One completed rollup interval: counter increments, gauge last-values,
/// histogram bucket increments, and how many queries elapsed.
#[derive(Debug, Clone)]
struct Interval {
    index: u64,
    queries: u64,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, HistogramDelta>,
}

#[derive(Debug)]
struct Inner {
    /// Cumulative state at the end of the last completed interval.
    last: Snapshot,
    /// Cumulative fold of every evicted interval plus the creation-time
    /// snapshot: the ring's starting baseline.
    base: Snapshot,
    ring: VecDeque<Interval>,
    dropped: u64,
    next_index: u64,
    /// Query count at the last tick, to attribute queries per interval.
    last_tick_queries: u64,
}

/// A bounded metrics time series ticked on query completion.
///
/// All methods take the [`Registry`] to roll up; a timeline must always
/// be fed the **same** registry it was created against (the global path
/// uses [`metrics::global`] throughout).
#[derive(Debug)]
pub struct Timeline {
    interval_queries: u64,
    capacity: usize,
    queries: AtomicU64,
    inner: Mutex<Inner>,
}

impl Timeline {
    /// A timeline rolling up `registry` every `interval_queries`
    /// completed queries, retaining up to `capacity` intervals in full.
    /// The registry's current state becomes the baseline: the first
    /// interval's deltas are relative to *now*, not to zero.
    pub fn new(registry: &Registry, interval_queries: u64, capacity: usize) -> Self {
        let snap = Snapshot::capture(registry);
        Timeline {
            interval_queries: interval_queries.max(1),
            capacity: capacity.max(1),
            queries: AtomicU64::new(0),
            inner: Mutex::new(Inner {
                last: snap.clone(),
                base: snap,
                ring: VecDeque::new(),
                dropped: 0,
                next_index: 0,
                last_tick_queries: 0,
            }),
        }
    }

    /// A timeline with the default interval and capacity.
    pub fn with_defaults(registry: &Registry) -> Self {
        Timeline::new(registry, DEFAULT_INTERVAL_QUERIES, DEFAULT_CAPACITY)
    }

    /// Queries per rollup interval.
    pub fn interval_queries(&self) -> u64 {
        self.interval_queries
    }

    /// Total queries observed via [`Timeline::note_query`].
    pub fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Completed intervals evicted from the ring (folded into `base`).
    pub fn intervals_dropped(&self) -> u64 {
        self.inner.lock().expect("timeline lock").dropped
    }

    /// Completed intervals currently retained in the ring.
    pub fn intervals_retained(&self) -> usize {
        self.inner.lock().expect("timeline lock").ring.len()
    }

    /// Notes one completed query; every `interval_queries`-th call rolls
    /// the current registry deltas into a new interval. The off-tick
    /// path is one relaxed `fetch_add`.
    pub fn note_query(&self, registry: &Registry) {
        let n = self.queries.fetch_add(1, Ordering::Relaxed) + 1;
        if n.is_multiple_of(self.interval_queries) {
            self.tick(registry);
        }
    }

    /// Forces an interval boundary now (also called internally on the
    /// query cadence). No-op when nothing changed since the last tick.
    pub fn tick(&self, registry: &Registry) {
        let mut inner = self.inner.lock().expect("timeline lock");
        self.capture_interval(&mut inner, registry);
    }

    fn capture_interval(&self, inner: &mut Inner, registry: &Registry) {
        let now = Snapshot::capture(registry);
        let queries_now = self.queries.load(Ordering::Relaxed);
        let queries = queries_now.saturating_sub(inner.last_tick_queries);

        let mut counters = BTreeMap::new();
        for (name, &v) in &now.counters {
            let prev = inner.last.counters.get(name).copied().unwrap_or(0);
            let delta = v.saturating_sub(prev);
            if delta != 0 {
                counters.insert(name.clone(), delta);
            }
        }
        let mut histograms = BTreeMap::new();
        for (name, hs) in &now.histograms {
            let delta = match inner.last.histograms.get(name) {
                Some(prev) if prev.bounds == hs.bounds && prev.counts.len() == hs.counts.len() => {
                    HistogramDelta {
                        count: hs.count().saturating_sub(prev.count()),
                        sum: hs.sum.wrapping_sub(prev.sum),
                        buckets: hs
                            .counts
                            .iter()
                            .zip(&prev.counts)
                            .map(|(a, b)| a.saturating_sub(*b))
                            .collect(),
                    }
                }
                // Bounds changed (registry cleared and re-created): the
                // previous state is unusable, treat it as zero.
                _ => HistogramDelta {
                    count: hs.count(),
                    sum: hs.sum,
                    buckets: hs.counts.clone(),
                },
            };
            if delta.count != 0 {
                histograms.insert(name.clone(), delta);
            }
        }
        let changed = queries > 0
            || !counters.is_empty()
            || !histograms.is_empty()
            || now.gauges != inner.last.gauges;
        if !changed {
            return;
        }

        let interval = Interval {
            index: inner.next_index,
            queries,
            counters,
            gauges: now.gauges.clone(),
            histograms,
        };
        inner.next_index += 1;
        inner.last_tick_queries = queries_now;
        inner.last = now;
        inner.ring.push_back(interval);
        while inner.ring.len() > self.capacity {
            let evicted = inner.ring.pop_front().expect("non-empty ring");
            Self::fold_into_base(&mut inner.base, &evicted);
            inner.dropped += 1;
        }
    }

    /// Folds an evicted interval's deltas into the cumulative base so
    /// `base + Σ(ring)` keeps reproducing the registry state.
    fn fold_into_base(base: &mut Snapshot, evicted: &Interval) {
        for (name, delta) in &evicted.counters {
            *base.counters.entry(name.clone()).or_insert(0) += delta;
        }
        base.gauges = evicted.gauges.clone();
        for (name, delta) in &evicted.histograms {
            match base.histograms.get_mut(name) {
                Some(hs) if hs.counts.len() == delta.buckets.len() => {
                    hs.sum = hs.sum.wrapping_add(delta.sum);
                    for (b, d) in hs.counts.iter_mut().zip(&delta.buckets) {
                        *b += d;
                    }
                }
                _ => {
                    base.histograms.insert(
                        name.clone(),
                        HistogramState {
                            bounds: Vec::new(),
                            counts: delta.buckets.clone(),
                            sum: delta.sum,
                        },
                    );
                }
            }
        }
    }

    fn json_u64_map(m: &BTreeMap<String, u64>) -> serde_json::Value {
        let mut out = serde_json::Map::new();
        for (name, &v) in m {
            out.insert(name.clone(), serde_json::Value::from(v));
        }
        serde_json::Value::Object(out)
    }

    fn json_i64_map(m: &BTreeMap<String, i64>) -> serde_json::Value {
        let mut out = serde_json::Map::new();
        for (name, &v) in m {
            out.insert(name.clone(), serde_json::Value::from(v));
        }
        serde_json::Value::Object(out)
    }

    /// Serializes the timeline, first folding any partial interval so
    /// the exported series reproduces the registry's cumulative state
    /// exactly: for every counter and histogram bucket,
    /// `base + Σ(intervals) == registry`, and the newest gauge
    /// last-values equal the registry's.
    pub fn to_json(&self, registry: &Registry) -> serde_json::Value {
        let mut inner = self.inner.lock().expect("timeline lock");
        self.capture_interval(&mut inner, registry);
        let base = &inner.base;
        let mut base_hists = serde_json::Map::new();
        for (name, hs) in &base.histograms {
            base_hists.insert(
                name.clone(),
                serde_json::json!({
                    "bounds": hs.bounds.clone(),
                    "counts": hs.counts.clone(),
                    "count": hs.count(),
                    "sum": hs.sum,
                }),
            );
        }
        let intervals: Vec<serde_json::Value> = inner
            .ring
            .iter()
            .map(|iv| {
                let mut hists = serde_json::Map::new();
                for (name, d) in &iv.histograms {
                    hists.insert(
                        name.clone(),
                        serde_json::json!({
                            "count": d.count,
                            "sum": d.sum,
                            "buckets": d.buckets.clone(),
                        }),
                    );
                }
                serde_json::json!({
                    "index": iv.index,
                    "queries": iv.queries,
                    "counters": Self::json_u64_map(&iv.counters),
                    "gauges": Self::json_i64_map(&iv.gauges),
                    "histograms": serde_json::Value::Object(hists),
                })
            })
            .collect();
        serde_json::json!({
            "format": TIMELINE_FORMAT,
            "version": TIMELINE_VERSION,
            "interval_queries": self.interval_queries,
            "capacity": self.capacity,
            "queries": self.queries.load(Ordering::Relaxed),
            "intervals_dropped": inner.dropped,
            "base": {
                "counters": Self::json_u64_map(&base.counters),
                "gauges": Self::json_i64_map(&base.gauges),
                "histograms": serde_json::Value::Object(base_hists),
            },
            "intervals": intervals,
        })
    }
}

static INSTALLED: AtomicBool = AtomicBool::new(false);
static TIMELINE: RwLock<Option<Arc<Timeline>>> = RwLock::new(None);

/// Installs (or removes, with `None`) the process-global timeline that
/// [`note_query`] ticks against [`metrics::global`]. Returns the
/// previously installed timeline, mirroring `trace::set_sink`.
pub fn set_timeline(timeline: Option<Arc<Timeline>>) -> Option<Arc<Timeline>> {
    let mut guard = TIMELINE.write().expect("timeline registration lock");
    INSTALLED.store(timeline.is_some(), Ordering::Relaxed);
    std::mem::replace(&mut *guard, timeline)
}

/// The currently installed global timeline, if any — the telemetry
/// server reads it to serve `GET /timeline` from the live ring.
pub fn current() -> Option<Arc<Timeline>> {
    TIMELINE.read().expect("timeline registration lock").clone()
}

/// Notes one completed query on the global timeline, if installed. With
/// none installed this is a single relaxed atomic load — cheap enough
/// for every engine's `finish_query` epilogue to call unconditionally.
pub fn note_query() {
    if !INSTALLED.load(Ordering::Relaxed) {
        return;
    }
    let timeline = TIMELINE.read().expect("timeline registration lock").clone();
    if let Some(timeline) = timeline {
        timeline.note_query(metrics::global());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sum_series(doc: &serde_json::Value) -> (BTreeMap<String, u64>, BTreeMap<String, Vec<u64>>) {
        // base + Σ(interval deltas), reconstructed from the JSON.
        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        let mut buckets: BTreeMap<String, Vec<u64>> = BTreeMap::new();
        let base = doc.get("base").unwrap();
        for (name, v) in base.get("counters").unwrap().as_object().unwrap().iter() {
            counters.insert(name.clone(), v.as_u64().unwrap());
        }
        for (name, h) in base.get("histograms").unwrap().as_object().unwrap().iter() {
            let counts: Vec<u64> = h
                .get("counts")
                .unwrap()
                .as_array()
                .unwrap()
                .iter()
                .map(|c| c.as_u64().unwrap())
                .collect();
            buckets.insert(name.clone(), counts);
        }
        for iv in doc.get("intervals").unwrap().as_array().unwrap() {
            for (name, v) in iv.get("counters").unwrap().as_object().unwrap().iter() {
                *counters.entry(name.clone()).or_insert(0) += v.as_u64().unwrap();
            }
            for (name, h) in iv.get("histograms").unwrap().as_object().unwrap().iter() {
                let deltas: Vec<u64> = h
                    .get("buckets")
                    .unwrap()
                    .as_array()
                    .unwrap()
                    .iter()
                    .map(|c| c.as_u64().unwrap())
                    .collect();
                let entry = buckets
                    .entry(name.clone())
                    .or_insert_with(|| vec![0; deltas.len()]);
                for (b, d) in entry.iter_mut().zip(&deltas) {
                    *b += d;
                }
            }
        }
        (counters, buckets)
    }

    #[test]
    fn intervals_roll_up_counter_deltas() {
        let r = Registry::new();
        r.counter("pre").add(7); // pre-existing state lands in base
        let tl = Timeline::new(&r, 2, 8);
        r.counter("knn.queries").add(1);
        tl.note_query(&r);
        r.counter("knn.queries").add(1);
        tl.note_query(&r); // tick at query 2
        assert_eq!(tl.intervals_retained(), 1);
        let doc = tl.to_json(&r);
        assert_eq!(
            doc.get("format").and_then(|v| v.as_str()),
            Some(TIMELINE_FORMAT)
        );
        assert_eq!(doc.get("version").and_then(|v| v.as_u64()), Some(1));
        let pre = doc
            .get("base")
            .and_then(|b| b.get("counters"))
            .and_then(|c| c.get("pre"))
            .and_then(|v| v.as_u64());
        assert_eq!(pre, Some(7));
        let (counters, _) = sum_series(&doc);
        assert_eq!(counters["knn.queries"], 2);
        assert_eq!(counters["pre"], 7);
    }

    #[test]
    fn quiet_ticks_produce_no_intervals() {
        let r = Registry::new();
        let tl = Timeline::new(&r, 1, 4);
        tl.tick(&r);
        tl.tick(&r);
        assert_eq!(tl.intervals_retained(), 0);
        assert_eq!(tl.intervals_dropped(), 0);
    }

    #[test]
    fn final_partial_interval_is_flushed_on_export() {
        let r = Registry::new();
        let tl = Timeline::new(&r, 1000, 4); // cadence never fires
        r.counter("c").add(3);
        tl.note_query(&r);
        let doc = tl.to_json(&r);
        let (counters, _) = sum_series(&doc);
        assert_eq!(counters["c"], 3);
        assert_eq!(doc.get("queries").and_then(|v| v.as_u64()), Some(1));
    }

    #[test]
    fn global_note_query_is_a_noop_without_a_timeline() {
        let prev = set_timeline(None);
        note_query(); // must not panic or tick anything
        set_timeline(prev);
    }

    proptest! {
        /// The satellite invariant: after an arbitrary operation
        /// sequence — enough ticks to wrap a tiny ring several times —
        /// `base + Σ(interval deltas)` reproduces the registry's
        /// cumulative counters and per-bucket histogram counts exactly,
        /// and the newest gauge last-values match the registry.
        #[test]
        fn series_sums_back_to_the_cumulative_snapshot(
            steps in proptest::collection::vec(
                (0u8..3, 0usize..3, 1u64..1000), 1..60),
            capacity in 1usize..5,
        ) {
            let r = Registry::new();
            let names = ["a", "b", "c"];
            let tl = Timeline::new(&r, 1, capacity);
            for (kind, which, value) in steps {
                match kind {
                    0 => r.counter(names[which]).add(value),
                    1 => r.gauge(names[which]).set(value as i64 - 500),
                    _ => r.histogram(names[which]).record(value * 1000),
                }
                tl.note_query(&r); // interval per step → guaranteed wrap
            }
            let doc = tl.to_json(&r);
            let (counters, buckets) = sum_series(&doc);
            prop_assert_eq!(&counters, &r.counter_values());
            let live: BTreeMap<String, Vec<u64>> = r
                .histogram_values()
                .into_iter()
                .map(|(name, hs)| (name, hs.counts))
                .collect();
            prop_assert_eq!(&buckets, &live);
            // Newest gauges (last interval if any, else base).
            let intervals = doc.get("intervals").unwrap().as_array().unwrap();
            let gauges = intervals
                .last()
                .map(|iv| iv.get("gauges").unwrap())
                .unwrap_or_else(|| doc.get("base").unwrap().get("gauges").unwrap());
            let live_gauges = r.gauge_values();
            for (name, v) in gauges.as_object().unwrap().iter() {
                prop_assert_eq!(v.as_i64().unwrap(), live_gauges[name]);
            }
            // Every step changed a metric and ticked, so each produced
            // exactly one interval; any beyond `capacity` were evicted
            // into base — the wrap-around this test exists to cover.
            let dropped = doc.get("intervals_dropped").and_then(|v| v.as_u64()).unwrap() as usize;
            prop_assert_eq!(
                dropped + intervals.len(),
                doc.get("queries").and_then(|v| v.as_u64()).unwrap() as usize
            );
            prop_assert!(intervals.len() <= capacity);
        }
    }
}
