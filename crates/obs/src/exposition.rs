//! Prometheus text exposition of a [`Registry`], plus a parser for the
//! same format — the serve-mode face of the metrics registry.
//!
//! ## Name mapping
//!
//! The registry's dotted names become Prometheus metric names under one
//! mechanical rule, applied identically in both directions:
//!
//! | registry name           | exposition name                         |
//! |-------------------------|-----------------------------------------|
//! | `knn.queries` (counter) | `knn_queries_total`                     |
//! | `knn.stage.histogram_ns` (counter) | `knn_stage_histogram_ns_total` |
//! | `batch.size` (gauge)    | `batch_size`                            |
//! | `knn.query_ns` (histogram) | `knn_query_ns_bucket{le="…"}`, `knn_query_ns_sum`, `knn_query_ns_count` |
//!
//! - every character outside `[a-zA-Z0-9_:]` (in practice: the dots)
//!   becomes `_`;
//! - counters get the conventional `_total` suffix (never doubled);
//! - gauges are exposed under the sanitized name unchanged;
//! - histograms expand into `_bucket`/`_sum`/`_count` series with
//!   **cumulative** `le`-labelled bucket counts and a final
//!   `le="+Inf"` bucket equal to `_count`, exactly as Prometheus
//!   `histogram` types require (the registry stores per-bucket counts;
//!   the renderer accumulates, the parser de-accumulates).
//!
//! The mapping is lossy only about the original dot positions, which is
//! why every `# HELP` line carries the dotted registry name — a scrape
//! can always be traced back to the `--metrics-out` key it mirrors.
//! [`render`] and [`Registry::snapshot_json`] read the same atomics, so
//! a scrape and a snapshot taken from a quiescent registry agree on
//! every counter, gauge, bucket count, and (derived) quantile.

use std::collections::BTreeMap;

use crate::metrics::{HistogramState, Registry};

/// Sanitizes a dotted registry name into a Prometheus metric name:
/// every character outside `[a-zA-Z0-9_:]` becomes `_`, and a leading
/// digit is prefixed with `_` (Prometheus names cannot start with one).
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// The exposition name of a counter: sanitized, with `_total` appended
/// unless the registry name already ends in it.
pub fn counter_name(name: &str) -> String {
    let base = sanitize_name(name);
    if base.ends_with("_total") {
        base
    } else {
        format!("{base}_total")
    }
}

/// Escapes a `# HELP` text: backslashes and newlines, per the format.
fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Renders `registry` in the Prometheus text exposition format
/// (`text/plain; version=0.0.4`): counters first, then gauges, then
/// histograms, each section sorted by registry name. Histogram bucket
/// counts are emitted cumulatively with a trailing `le="+Inf"` sample.
pub fn render(registry: &Registry) -> String {
    let mut out = String::new();
    for (name, value) in registry.counter_values() {
        let pname = counter_name(&name);
        out.push_str(&format!(
            "# HELP {pname} trajsim counter {}\n# TYPE {pname} counter\n{pname} {value}\n",
            escape_help(&name)
        ));
    }
    for (name, value) in registry.gauge_values() {
        let pname = sanitize_name(&name);
        out.push_str(&format!(
            "# HELP {pname} trajsim gauge {}\n# TYPE {pname} gauge\n{pname} {value}\n",
            escape_help(&name)
        ));
    }
    for (name, hs) in registry.histogram_values() {
        let pname = sanitize_name(&name);
        out.push_str(&format!(
            "# HELP {pname} trajsim histogram {}\n# TYPE {pname} histogram\n",
            escape_help(&name)
        ));
        let mut cum = 0u64;
        for (i, &count) in hs.counts.iter().enumerate() {
            cum += count;
            match hs.bounds.get(i) {
                Some(&b) => out.push_str(&format!("{pname}_bucket{{le=\"{b}\"}} {cum}\n")),
                None => out.push_str(&format!("{pname}_bucket{{le=\"+Inf\"}} {cum}\n")),
            }
        }
        out.push_str(&format!("{pname}_sum {}\n", hs.sum));
        out.push_str(&format!("{pname}_count {cum}\n"));
    }
    out
}

/// A parsed exposition document: plain samples (counters and gauges,
/// keyed by their **exposition** names) and reassembled histograms with
/// per-bucket (de-accumulated) counts, the registry's native layout.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Scrape {
    /// `name → value` for every un-labelled sample (counters keep their
    /// `_total` suffix; gauges appear as-is).
    pub samples: BTreeMap<String, f64>,
    /// Histograms reassembled from `_bucket`/`_sum`/`_count` series,
    /// keyed by the exposition base name, counts per-bucket.
    pub histograms: BTreeMap<String, HistogramState>,
}

impl Scrape {
    /// An integer sample, if present and integral.
    pub fn sample_u64(&self, name: &str) -> Option<u64> {
        let v = *self.samples.get(name)?;
        (v >= 0.0 && v.fract() == 0.0).then_some(v as u64)
    }
}

/// Parses a Prometheus text exposition document (the subset [`render`]
/// emits: `# HELP`/`# TYPE` comments, un-labelled samples, and
/// histogram `_bucket{le="…"}`/`_sum`/`_count` families). Cumulative
/// bucket counts are converted back to the per-bucket layout of
/// [`HistogramState`]; the `+Inf` bucket becomes the overflow count.
///
/// # Errors
///
/// Fails on a malformed sample line, a non-monotone bucket series, or a
/// histogram whose `+Inf` bucket disagrees with its `_count`.
pub fn parse(text: &str) -> Result<Scrape, String> {
    struct HistAcc {
        bounds: Vec<u64>,
        cums: Vec<u64>,
        inf: Option<u64>,
        sum: u64,
        count: u64,
    }
    let mut scrape = Scrape::default();
    let mut hists: BTreeMap<String, HistAcc> = BTreeMap::new();
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            if let (Some(name), Some(kind)) = (it.next(), it.next()) {
                types.insert(name.to_string(), kind.to_string());
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (key, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("malformed sample line {line:?}"))?;
        let value: f64 = value
            .parse()
            .map_err(|_| format!("non-numeric sample value in {line:?}"))?;
        if let Some((name, labels)) = key.split_once('{') {
            let labels = labels
                .strip_suffix('}')
                .ok_or_else(|| format!("unterminated label set in {line:?}"))?;
            let base = name
                .strip_suffix("_bucket")
                .ok_or_else(|| format!("unexpected labelled sample {name:?}"))?;
            let le = labels
                .strip_prefix("le=\"")
                .and_then(|l| l.strip_suffix('"'))
                .ok_or_else(|| format!("bucket without an le label in {line:?}"))?;
            let acc = hists.entry(base.to_string()).or_insert_with(|| HistAcc {
                bounds: Vec::new(),
                cums: Vec::new(),
                inf: None,
                sum: 0,
                count: 0,
            });
            if le == "+Inf" {
                acc.inf = Some(value as u64);
            } else {
                let bound: u64 = le
                    .parse()
                    .map_err(|_| format!("non-integer le bound in {line:?}"))?;
                acc.bounds.push(bound);
                acc.cums.push(value as u64);
            }
        } else if let Some(base) = key.strip_suffix("_sum").filter(|b| {
            types.get(*b).map(String::as_str) == Some("histogram") || hists.contains_key(*b)
        }) {
            hists
                .entry(base.to_string())
                .and_modify(|a| a.sum = value as u64);
        } else if let Some(base) = key.strip_suffix("_count").filter(|b| {
            types.get(*b).map(String::as_str) == Some("histogram") || hists.contains_key(*b)
        }) {
            hists
                .entry(base.to_string())
                .and_modify(|a| a.count = value as u64);
        } else {
            scrape.samples.insert(key.to_string(), value);
        }
    }
    for (name, acc) in hists {
        let inf = acc
            .inf
            .ok_or_else(|| format!("histogram {name:?} has no +Inf bucket"))?;
        if inf != acc.count {
            return Err(format!(
                "histogram {name:?}: +Inf bucket {inf} != _count {}",
                acc.count
            ));
        }
        let mut counts = Vec::with_capacity(acc.cums.len() + 1);
        let mut prev = 0u64;
        for &c in &acc.cums {
            if c < prev {
                return Err(format!("histogram {name:?}: non-monotone bucket series"));
            }
            counts.push(c - prev);
            prev = c;
        }
        if inf < prev {
            return Err(format!("histogram {name:?}: non-monotone +Inf bucket"));
        }
        counts.push(inf - prev);
        scrape.histograms.insert(
            name,
            HistogramState {
                bounds: acc.bounds,
                counts,
                sum: acc.sum,
            },
        );
    }
    Ok(scrape)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::quantile_from_buckets;

    #[test]
    fn names_map_mechanically() {
        assert_eq!(
            sanitize_name("knn.stage.histogram_ns"),
            "knn_stage_histogram_ns"
        );
        assert_eq!(sanitize_name("batch.size"), "batch_size");
        assert_eq!(counter_name("knn.queries"), "knn_queries_total");
        assert_eq!(counter_name("already_total"), "already_total");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name("a-b c"), "a_b_c");
    }

    #[test]
    fn render_emits_typed_families_with_cumulative_buckets() {
        let r = Registry::new();
        r.counter("knn.queries").add(3);
        r.gauge("batch.size").set(-2);
        let h = r.histogram_with_bounds("knn.query_ns", vec![10, 100]);
        h.record(5);
        h.record(50);
        h.record(5000);
        let text = render(&r);
        assert!(text.contains("# TYPE knn_queries_total counter"));
        assert!(text.contains("knn_queries_total 3"));
        assert!(text.contains("# TYPE batch_size gauge"));
        assert!(text.contains("batch_size -2"));
        assert!(text.contains("# TYPE knn_query_ns histogram"));
        // Cumulative: 1, 2, then +Inf = 3 = _count.
        assert!(text.contains("knn_query_ns_bucket{le=\"10\"} 1"));
        assert!(text.contains("knn_query_ns_bucket{le=\"100\"} 2"));
        assert!(text.contains("knn_query_ns_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("knn_query_ns_sum 5055"));
        assert!(text.contains("knn_query_ns_count 3"));
        // The HELP line preserves the dotted registry name.
        assert!(text.contains("# HELP knn_queries_total trajsim counter knn.queries"));
    }

    #[test]
    fn parse_round_trips_render() {
        let r = Registry::new();
        r.counter("knn.queries").add(42);
        r.counter("knn.stage.histogram_ns").add(777);
        r.gauge("process.rss_bytes").set(123_456);
        let h = r.histogram("knn.query_ns");
        for v in [1_000u64, 2_000_000, 5_000_000_000, 700] {
            h.record(v);
        }
        let scrape = parse(&render(&r)).unwrap();
        assert_eq!(scrape.sample_u64("knn_queries_total"), Some(42));
        assert_eq!(scrape.sample_u64("knn_stage_histogram_ns_total"), Some(777));
        assert_eq!(scrape.sample_u64("process_rss_bytes"), Some(123_456));
        let hs = &scrape.histograms["knn_query_ns"];
        assert_eq!(hs.bounds, h.bounds().to_vec());
        assert_eq!(hs.counts, h.bucket_counts());
        assert_eq!(hs.sum, h.sum());
        // Quantiles derived from the scrape equal the live estimates.
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(
                quantile_from_buckets(&hs.bounds, &hs.counts, q),
                h.quantile(q)
            );
        }
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(parse("knn_queries_total notanumber").is_err());
        assert!(parse("x_bucket{le=\"10\" 3").is_err());
        // Non-monotone cumulative buckets.
        let bad = "x_bucket{le=\"10\"} 5\nx_bucket{le=\"20\"} 3\n\
                   x_bucket{le=\"+Inf\"} 5\nx_sum 1\nx_count 5\n";
        assert!(parse(bad).unwrap_err().contains("non-monotone"));
        // +Inf disagreeing with _count.
        let bad = "x_bucket{le=\"10\"} 1\nx_bucket{le=\"+Inf\"} 2\nx_sum 1\nx_count 3\n";
        assert!(parse(bad).unwrap_err().contains("_count"));
        // Missing +Inf bucket.
        let bad = "x_bucket{le=\"10\"} 1\nx_sum 1\nx_count 1\n";
        assert!(parse(bad).unwrap_err().contains("+Inf"));
    }

    #[test]
    fn empty_registry_renders_empty_and_parses_back() {
        let r = Registry::new();
        assert_eq!(render(&r), "");
        assert_eq!(parse("").unwrap(), Scrape::default());
    }
}
