//! # trajsim-obs
//!
//! The observability backbone of the trajsim workspace: a lightweight
//! structured-tracing layer and an always-on metrics registry, both
//! implemented in-tree (the build is offline) and cheap enough to leave
//! enabled in release binaries.
//!
//! **Tracing** ([`trace`], the [`span!`] / [`event!`] macros): leveled
//! records with key/value fields. The level is set programmatically
//! ([`set_level`]) or by the `TRAJSIM_LOG` environment variable; records
//! go to a process-global [`Sink`] — ship one JSON object per line with
//! [`JsonLinesSink`]. With tracing off (the default) an instrumentation
//! site costs one relaxed atomic load and its fields are never
//! evaluated.
//!
//! **Metrics** ([`metrics`]): named [`Counter`]s, [`Gauge`]s, and
//! fixed-bucket [`Histogram`]s held in a [`Registry`] (the shared one is
//! [`metrics::global`]). Recording is relaxed atomics only — no locks on
//! the hot path — so the k-NN engines keep their instruments on in
//! release builds; [`Registry::snapshot_json`] serializes everything for
//! the CLI's `--metrics-out` and the bench harness.
//!
//! **Time series** ([`timeline`]): a bounded ring of interval rollups
//! (counter deltas, gauge last-values, histogram bucket deltas) ticked
//! from the query-completion chokepoint via [`timeline::note_query`],
//! exported as a JSON timeline whose intervals always sum back to the
//! cumulative registry state.
//!
//! **Live endpoint** ([`server`], [`exposition`], [`process`]): a
//! std-only HTTP server on a background thread serving the registry as
//! Prometheus text exposition (`GET /metrics`, dotted names mapped to
//! `knn_stage_*`-style underscored ones), liveness with process
//! self-metrics (`GET /healthz`; uptime, RSS, thread count), and the
//! live timeline ring (`GET /timeline`). The CLI wires it to a global
//! `--serve-metrics ADDR` flag.
//!
//! Span/metric taxonomy: see `DESIGN.md` §9 (span names are dotted,
//! `knn.query` / `parallel.pool`; metric names likewise,
//! `knn.edr_computed`, `parallel.worker_busy_ns`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod exposition;
pub mod metrics;
pub mod process;
pub mod server;
pub mod timeline;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, HistogramState, Registry, DEFAULT_LATENCY_BOUNDS_NS};
pub use server::{http_get, serve, ServerHandle};
pub use timeline::{Timeline, TIMELINE_FORMAT, TIMELINE_VERSION};
pub use trace::{
    emit, emit_span, enabled, level, set_level, set_sink, thread_id, FieldValue, JsonLinesSink,
    Level, Record, Sink, Span,
};
