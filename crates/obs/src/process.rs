//! Process self-metrics: uptime, resident set size, and thread count.
//!
//! These are gauges refreshed on demand — [`update`] is called by the
//! telemetry server before rendering `/metrics` or `/healthz`, and by
//! the CLI before writing a `--metrics-out` snapshot, so the values are
//! current as of the read rather than sampled on a timer. RSS and the
//! thread count come from `/proc/self` and are skipped gracefully where
//! procfs is unavailable (non-Linux): the gauges simply never appear.

use std::sync::OnceLock;
use std::time::Instant;

use crate::metrics::Registry;

/// The process start reference. First call wins; everything after
/// measures uptime from it. Called implicitly by [`update`], but
/// callers that want uptime anchored at program start (rather than the
/// first scrape) can call this early, e.g. from telemetry install.
pub fn start_instant() -> Instant {
    static START: OnceLock<Instant> = OnceLock::new();
    *START.get_or_init(Instant::now)
}

/// Seconds since [`start_instant`] was first anchored.
pub fn uptime_seconds() -> u64 {
    start_instant().elapsed().as_secs()
}

/// Resident set size in bytes, from `/proc/self/statm` (second field,
/// in pages). `None` where procfs is unavailable or unparsable.
pub fn rss_bytes() -> Option<u64> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    Some(pages * page_size())
}

/// Live thread count of this process, from the `Threads:` line of
/// `/proc/self/status`. `None` where procfs is unavailable.
pub fn thread_count() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

/// The system page size in bytes. std exposes no portable API for it
/// and this crate takes no libc dependency, so the Linux default of
/// 4 KiB is assumed — correct on x86-64 and default aarch64 kernels,
/// and the value only scales the RSS gauge.
fn page_size() -> u64 {
    4096
}

/// Refreshes the `process.*` gauges in `registry`:
///
/// - `process.uptime_seconds` — seconds since first anchor (always set);
/// - `process.rss_bytes` — resident set size (Linux only);
/// - `process.threads` — live thread count (Linux only).
///
/// Safe to call from any thread, any number of times.
pub fn update(registry: &Registry) {
    registry
        .gauge("process.uptime_seconds")
        .set(uptime_seconds() as i64);
    if let Some(rss) = rss_bytes() {
        registry.gauge("process.rss_bytes").set(rss as i64);
    }
    if let Some(threads) = thread_count() {
        registry.gauge("process.threads").set(threads as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_populates_uptime_and_linux_gauges() {
        let r = Registry::new();
        update(&r);
        let gauges = r.gauge_values();
        assert!(gauges.contains_key("process.uptime_seconds"));
        // On Linux (the CI platform) procfs is present; elsewhere the
        // gauges are absent rather than wrong.
        if cfg!(target_os = "linux") {
            assert!(gauges["process.rss_bytes"] > 0, "rss should be positive");
            assert!(gauges["process.threads"] >= 1, "at least this thread");
        }
    }

    #[test]
    fn rss_and_threads_are_plausible() {
        if !cfg!(target_os = "linux") {
            return;
        }
        let rss = rss_bytes().expect("procfs rss");
        // More than a page, less than a terabyte.
        assert!((4096..1 << 40).contains(&rss), "rss {rss}");
        let threads = thread_count().expect("procfs threads");
        assert!(threads >= 1);
        // Spawning a thread is visible while it lives.
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        let (ready_tx, ready_rx) = std::sync::mpsc::channel::<()>();
        let handle = std::thread::spawn(move || {
            ready_tx.send(()).ok();
            rx.recv().ok();
        });
        ready_rx.recv().unwrap();
        let during = thread_count().expect("procfs threads");
        assert!(during > 1, "spawned thread not visible: {during}");
        tx.send(()).ok();
        handle.join().unwrap();
    }

    #[test]
    fn uptime_is_monotone() {
        let a = uptime_seconds();
        let b = uptime_seconds();
        assert!(b >= a);
    }
}
