//! Tiny flag parser: positional arguments plus `--key value` options.

use std::collections::BTreeMap;

/// Parsed command line: positionals in order, options by name.
#[derive(Debug, Clone, Default)]
pub struct Parsed {
    positionals: Vec<String>,
    options: BTreeMap<String, String>,
}

impl Parsed {
    /// Splits `argv` into positionals and `--key value` options.
    ///
    /// # Errors
    ///
    /// Fails on a dangling `--key` with no value.
    pub fn parse(argv: &[String]) -> Result<Parsed, String> {
        let mut out = Parsed::default();
        let mut it = argv.iter();
        while let Some(arg) = it.next() {
            let key = arg.strip_prefix("--").or_else(|| {
                arg.strip_prefix('-')
                    .filter(|k| !k.is_empty() && !k.starts_with(char::is_numeric))
            });
            if let Some(key) = key {
                let value = it
                    .next()
                    .ok_or_else(|| format!("option --{key} needs a value"))?;
                out.options.insert(key.to_string(), value.clone());
            } else {
                out.positionals.push(arg.clone());
            }
        }
        Ok(out)
    }

    /// The `i`-th positional argument.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positionals.get(i).map(String::as_str)
    }

    /// Number of positionals.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn positional_count(&self) -> usize {
        self.positionals.len()
    }

    /// A string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// A parsed numeric/typed option, with a default.
    ///
    /// # Errors
    ///
    /// Fails when the option is present but does not parse.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("option --{key}: cannot parse {v:?}")),
        }
    }

    /// A required typed option.
    ///
    /// # Errors
    ///
    /// Fails when missing or unparsable.
    pub fn require<T: std::str::FromStr>(&self, key: &str) -> Result<T, String> {
        self.options
            .get(key)
            .ok_or_else(|| format!("missing required option --{key}"))?
            .parse()
            .map_err(|_| format!("option --{key}: cannot parse {:?}", self.options[key]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_positionals_and_options() {
        let p = Parsed::parse(&args(&["knn", "data.csv", "--k", "5", "--eps", "0.25"])).unwrap();
        assert_eq!(p.positional(0), Some("knn"));
        assert_eq!(p.positional(1), Some("data.csv"));
        assert_eq!(p.positional_count(), 2);
        assert_eq!(p.get_or("k", 1usize).unwrap(), 5);
        assert_eq!(p.get_or("eps", 1.0f64).unwrap(), 0.25);
        assert_eq!(p.get_or("missing", 7usize).unwrap(), 7);
    }

    #[test]
    fn errors_are_informative() {
        assert!(Parsed::parse(&args(&["--dangling"])).is_err());
        let p = Parsed::parse(&args(&["--k", "abc"])).unwrap();
        assert!(p.get_or("k", 0usize).is_err());
        assert!(p.require::<usize>("nope").is_err());
    }
}
