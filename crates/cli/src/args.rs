//! Tiny flag parser: positional arguments plus `--key value` options and
//! bare `--flag` booleans.

use std::collections::BTreeMap;

/// Parsed command line: positionals in order, options by name.
#[derive(Debug, Clone, Default)]
pub struct Parsed {
    positionals: Vec<String>,
    options: BTreeMap<String, String>,
}

/// Does this token name an option (`--key` / `-key`) rather than a value?
/// A leading digit after `-` reads as a negative number, not an option.
fn option_key(arg: &str) -> Option<&str> {
    arg.strip_prefix("--").or_else(|| {
        arg.strip_prefix('-')
            .filter(|k| !k.is_empty() && !k.starts_with(char::is_numeric))
    })
}

impl Parsed {
    /// Splits `argv` into positionals and `--key value` options. A `--key`
    /// followed by another option token — or by nothing — is a boolean
    /// flag and gets the value `"true"` (see [`Parsed::flag`]).
    ///
    /// # Errors
    ///
    /// Currently infallible; the `Result` keeps the signature stable for
    /// stricter future parsing.
    pub fn parse(argv: &[String]) -> Result<Parsed, String> {
        let mut out = Parsed::default();
        let mut it = argv.iter().peekable();
        while let Some(arg) = it.next() {
            if let Some(key) = option_key(arg) {
                let takes_value = it.peek().is_some_and(|next| option_key(next).is_none());
                let value = if takes_value {
                    it.next().expect("peeked").clone()
                } else {
                    "true".to_string()
                };
                out.options.insert(key.to_string(), value);
            } else {
                out.positionals.push(arg.clone());
            }
        }
        Ok(out)
    }

    /// The `i`-th positional argument.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positionals.get(i).map(String::as_str)
    }

    /// Number of positionals.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn positional_count(&self) -> usize {
        self.positionals.len()
    }

    /// A string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// A boolean flag: true when `--key` was given bare (or with an
    /// explicit value other than `false`/`0`).
    pub fn flag(&self, key: &str) -> bool {
        match self.options.get(key).map(String::as_str) {
            None => false,
            Some("false") | Some("0") => false,
            Some(_) => true,
        }
    }

    /// A parsed numeric/typed option, with a default.
    ///
    /// # Errors
    ///
    /// Fails when the option is present but does not parse.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("option --{key}: cannot parse {v:?}")),
        }
    }

    /// A required typed option.
    ///
    /// # Errors
    ///
    /// Fails when missing or unparsable.
    pub fn require<T: std::str::FromStr>(&self, key: &str) -> Result<T, String> {
        self.options
            .get(key)
            .ok_or_else(|| format!("missing required option --{key}"))?
            .parse()
            .map_err(|_| format!("option --{key}: cannot parse {:?}", self.options[key]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_positionals_and_options() {
        let p = Parsed::parse(&args(&["knn", "data.csv", "--k", "5", "--eps", "0.25"])).unwrap();
        assert_eq!(p.positional(0), Some("knn"));
        assert_eq!(p.positional(1), Some("data.csv"));
        assert_eq!(p.positional_count(), 2);
        assert_eq!(p.get_or("k", 1usize).unwrap(), 5);
        assert_eq!(p.get_or("eps", 1.0f64).unwrap(), 0.25);
        assert_eq!(p.get_or("missing", 7usize).unwrap(), 7);
    }

    #[test]
    fn errors_are_informative() {
        let p = Parsed::parse(&args(&["--k", "abc"])).unwrap();
        assert!(p.get_or("k", 0usize).is_err());
        assert!(p.require::<usize>("nope").is_err());
    }

    #[test]
    fn bare_flags_are_boolean() {
        // Trailing bare flag, bare flag followed by another option, and an
        // explicit value all parse; negative numbers stay values.
        let p = Parsed::parse(&args(&["--trace", "--k", "5", "--verbose"])).unwrap();
        assert!(p.flag("trace"));
        assert!(p.flag("verbose"));
        assert_eq!(p.get_or("k", 0usize).unwrap(), 5);
        assert!(!p.flag("absent"));
        let p = Parsed::parse(&args(&["--trace", "false", "--shift", "-3"])).unwrap();
        assert!(!p.flag("trace"));
        assert_eq!(p.get_or("shift", 0i64).unwrap(), -3);
    }
}
