//! `trajsim` — the command-line interface.
//!
//! Subcommands:
//!
//! - `generate <kind> [--n N] [--seed S] -o FILE` — write a synthetic
//!   data set (`nhl`, `mixed`, `walk`, `asl`, `kungfu`, `slip`) as CSV or
//!   binary (by extension: `.csv` / `.bin`);
//! - `convert <in> <out>` — convert between the CSV and binary formats;
//! - `stats <file>` — data set summary (sizes, lengths, spatial extent);
//! - `knn <file> --query I [--k K] [--eps E] [--engine ...]` — k-NN
//!   search with the chosen engine (`scan`, `qgram`, `histogram`,
//!   `combined`), reporting neighbours and pruning statistics;
//! - `range <file> --query I --edits K [--eps E]` — range search;
//! - `cluster <file> [--k K] [--eps E]` — complete-linkage clustering
//!   under EDR, printing the assignment and dendrogram.
//!
//! All numeric options have defaults; ε defaults to the paper's rule
//! (a quarter of the maximum per-dimension standard deviation after
//! per-trajectory normalization).

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}
