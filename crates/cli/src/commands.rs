//! Subcommand implementations.

use crate::args::Parsed;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;
use std::sync::Arc;
use trajsim_core::{max_std_dev, Dataset, MatchThreshold, Trajectory};
use trajsim_data::{seeded_rng, LengthDistribution};
use trajsim_eval::{agglomerative, Dendrogram, DistanceMatrix, Linkage};
use trajsim_profile::{
    read_stats_input, Attribution, DiffReport, FlightRecorder, ProfileCollector, Recording,
    SamplerConfig, SlowReport, TeeSink, WorkloadStats,
};
use trajsim_prune::{
    range_query, CombinedConfig, CombinedKnn, HistogramKnn, HistogramVariant, KnnEngine, KnnResult,
    NearTriangleKnn, QgramKnn, QgramVariant, QueryStats, ScanMode, SequentialScan,
};

const USAGE: &str = "\
usage: trajsim <command> [options]

commands:
  generate <nhl|mixed|walk|asl|kungfu|slip> -o FILE [--n N] [--seed S]
           [--spread W]   (walk only: scatter start points over a W x W
           square instead of starting every walk at the origin)
  convert  <in> <out>
  stats    <file>
  stats    show <recording|store>
  stats    merge <recording|store>... -o FILE
  stats    diff <a> <b> [--latency-tolerance F] [--shape-tolerance F]
           [--attribute] [--check]
  knn      <file> (--query I | --queries N [--batch B]) [--k K] [--eps E]
           [--engine ENGINE] [--index art] [--max-triangle M]
           [--metrics-out FILE]
  explain  <file> (--query I | --queries N [--batch B]) [--k K] [--eps E]
           [--engine ENGINE] [--index art] [--max-triangle M]
           [--json FILE]
  range    <file> --query I --edits K [--eps E]
  replay   <recording> [--max-drift F] [--check]
  slow     <recording> [--top N]
  slo      check <spec> <recording|store|timeline>
  watch    <addr> [--every S] [--count N]
  cluster  <file> [--k K] [--eps E] [--tree]

engines: scan|qgram|histogram|triangle|combined (default: combined)
index:   --index art generates candidates through the adaptive radix
         signature index (trie over quantized q-gram means and histogram
         bins) instead of scanning every trajectory's signatures;
         combined engine only

global options:
  --threads N           worker threads for parallel phases (default: all
                        cores; also settable via TRAJSIM_THREADS)
  --trace [LVL]         structured trace events as JSON lines on stderr
                        (bare --trace means debug;
                        LVL: error|warn|info|debug|trace)
  --profile-out FILE    collect the span stream of the whole run and write
                        it as a profile on exit
  --profile-format FMT  chrome (default: Chrome-trace JSON for Perfetto /
                        chrome://tracing) or collapsed (folded stacks for
                        flamegraph.pl / speedscope)
  --record FILE         flight-record the workload: one JSONL line per
                        query (per-stage candidates, timings, answers),
                        readable by `stats` and `replay`
  --sample N            tail-sample the recording: keep every query above
                        the rolling p99 latency plus 1 in N of the rest
                        (weighted so `stats` reweights to full-population
                        estimates); requires --record
  --timeline-every N    metrics-timeline interval in queries (default 64;
                        the timeline is written next to --metrics-out as
                        FILE.timeline.json)
  --serve-metrics ADDR  live telemetry endpoint while the command runs:
                        GET /metrics (Prometheus text), /healthz (JSON
                        liveness), /timeline (the live metrics ring);
                        port 0 picks an ephemeral port (printed)
  --serve-hold SECS     keep the endpoint up SECS seconds after the
                        command finishes (outputs are already written),
                        so a scraper can collect the final state

files: .csv (long format: traj_id,t,c0,c1) or .bin (trajsim binary)";

/// Every subcommand `dispatch` recognizes — the source of truth the
/// USAGE-drift test checks, so a new arm cannot land without help text.
#[cfg(test)]
const COMMANDS: &[&str] = &[
    "generate", "convert", "stats", "knn", "explain", "range", "replay", "slow", "slo", "watch",
    "cluster",
];

/// Fails fast when an output path cannot be created, naming the flag
/// that carried it — an unwritable path is a clean error before the
/// workload runs, not a lost result after. Shared by `--profile-out`,
/// `--metrics-out`, `--record`, `--json`, and `stats merge -o`.
fn ensure_writable(flag: &str, path: &str) -> Result<(), String> {
    File::create(path)
        .map(|_| ())
        .map_err(|e| format!("{flag} {path}: {e}"))
}

/// Tracing/profiling/recording requested on the command line, resolved
/// and validated before the command runs.
struct Telemetry {
    trace_level: Option<trajsim_obs::Level>,
    profile: Option<(String, String, Arc<ProfileCollector>)>,
    record: Option<(String, Arc<FlightRecorder>)>,
    timeline: Option<(String, Arc<trajsim_obs::Timeline>)>,
    /// The live telemetry endpoint (`--serve-metrics ADDR`) and how many
    /// seconds to hold it open after the command finishes
    /// (`--serve-hold`). Started here in `from_args` — NOT in
    /// `install()`, which `replay` re-runs mid-command and would
    /// double-bind — and shut down gracefully at the end of `finish()`,
    /// after every output file is written, so a scraper holding the
    /// endpoint open sees the same final counters `--metrics-out` got.
    serve: Option<(trajsim_obs::ServerHandle, u64)>,
}

/// Where the metrics timeline goes: next to `--metrics-out FILE`, named
/// `FILE.timeline.json` (with a plain `.json` suffix swapped out rather
/// than doubled).
fn timeline_path(metrics_out: &str) -> String {
    match metrics_out.strip_suffix(".json") {
        Some(stem) => format!("{stem}.timeline.json"),
        None => format!("{metrics_out}.timeline.json"),
    }
}

impl Telemetry {
    fn from_args(parsed: &Parsed) -> Result<Telemetry, String> {
        let trace_level = match parsed.get("trace") {
            // Bare `--trace` parses as the flag value "true" → debug.
            Some("true") => Some(trajsim_obs::Level::Debug),
            Some(lvl) => Some(lvl.parse().map_err(|e| format!("option --trace: {e}"))?),
            None => None,
        };
        let profile = match parsed.get("profile-out") {
            Some(path) => {
                let format: String = parsed.get_or("profile-format", "chrome".to_string())?;
                if format != "chrome" && format != "collapsed" {
                    return Err(format!(
                        "option --profile-format: unknown format {format:?} (chrome|collapsed)"
                    ));
                }
                ensure_writable("--profile-out", path)?;
                Some((path.to_string(), format, ProfileCollector::new()))
            }
            None => None,
        };
        let sample: Option<u64> = match parsed.get("sample") {
            Some(n) => {
                let n: u64 = n.parse().map_err(|e| format!("option --sample: {e}"))?;
                if n == 0 {
                    return Err("option --sample: must be at least 1".into());
                }
                if parsed.get("record").is_none() {
                    return Err("option --sample: requires --record FILE".into());
                }
                Some(n)
            }
            None => None,
        };
        let record = match parsed.get("record") {
            Some(path) => {
                ensure_writable("--record", path)?;
                let recorder = match sample {
                    Some(every) => {
                        FlightRecorder::create_sampled(path, SamplerConfig::every(every))
                    }
                    None => FlightRecorder::create(path),
                }
                .map_err(|e| format!("--record {path}: {e}"))?;
                Some((path.to_string(), recorder))
            }
            None => None,
        };
        let timeline = match parsed.get("metrics-out") {
            Some(path) => {
                let every: u64 = parsed.get_or(
                    "timeline-every",
                    trajsim_obs::timeline::DEFAULT_INTERVAL_QUERIES,
                )?;
                if every == 0 {
                    return Err("option --timeline-every: must be at least 1".into());
                }
                let out = timeline_path(path);
                ensure_writable("--metrics-out", &out)?;
                let tl = trajsim_obs::Timeline::new(
                    trajsim_obs::metrics::global(),
                    every,
                    trajsim_obs::timeline::DEFAULT_CAPACITY,
                );
                Some((out, Arc::new(tl)))
            }
            None => None,
        };
        let serve = match parsed.get("serve-metrics") {
            Some(addr) => {
                let hold: u64 = parsed.get_or("serve-hold", 0u64)?;
                let handle = trajsim_obs::serve(addr, trajsim_obs::metrics::global())
                    .map_err(|e| format!("option --serve-metrics: {e}"))?;
                // To stdout: under --trace, stderr must stay pure JSON
                // lines. With port 0 this is the only place the picked
                // ephemeral port is reported.
                println!("telemetry endpoint: http://{}/metrics", handle.addr());
                Some((handle, hold))
            }
            None => {
                if parsed.get("serve-hold").is_some() {
                    return Err("option --serve-hold: requires --serve-metrics ADDR".into());
                }
                None
            }
        };
        Ok(Telemetry {
            trace_level,
            profile,
            record,
            timeline,
            serve,
        })
    }

    /// Installs the global sink and level. The profile collector and the
    /// flight recorder need debug-level records, so `--profile-out` and
    /// `--record` raise the level to at least debug; a more verbose
    /// `--trace trace` wins.
    fn install(&self) {
        if let Some((_, tl)) = &self.timeline {
            trajsim_obs::timeline::set_timeline(Some(tl.clone()));
        }
        let mut sinks: Vec<Arc<dyn trajsim_obs::Sink>> = Vec::new();
        if self.trace_level.is_some() {
            sinks.push(Arc::new(trajsim_obs::JsonLinesSink::stderr()));
        }
        if let Some((_, _, collector)) = &self.profile {
            sinks.push(collector.clone());
        }
        if let Some((_, recorder)) = &self.record {
            sinks.push(recorder.clone());
        }
        match sinks.len() {
            0 => return,
            1 => trajsim_obs::set_sink(sinks.pop()),
            _ => trajsim_obs::set_sink(Some(Arc::new(TeeSink::new(sinks)))),
        }
        let mut level = self.trace_level.unwrap_or(trajsim_obs::Level::Off);
        if self.profile.is_some() || self.record.is_some() {
            level = level.max(trajsim_obs::Level::Debug);
        }
        trajsim_obs::set_level(level);
    }

    /// Writes the recording's header line once the command has resolved
    /// its configuration. No-op without `--record`; idempotent.
    fn record_header(&self, meta: serde_json::Value) -> Result<(), String> {
        if let Some((path, recorder)) = &self.record {
            recorder
                .write_header(meta)
                .map_err(|e| format!("--record {path}: {e}"))?;
        }
        Ok(())
    }

    /// Writes the collected profile and flushes the recording (if any)
    /// and, when either forced the tracing globals, puts them back the
    /// way `--trace` alone would have left them.
    fn finish(&self) -> Result<(), String> {
        let mut result = Ok(());
        if let Some((path, format, collector)) = &self.profile {
            let records = collector.take();
            let written = match format.as_str() {
                "chrome" => trajsim_profile::write_chrome_trace(Path::new(path), &records)
                    .map_err(|e| format!("--profile-out {path}: {e}")),
                _ => std::fs::write(path, trajsim_profile::collapsed_stacks(&records))
                    .map_err(|e| format!("--profile-out {path}: {e}")),
            };
            if written.is_ok() {
                eprintln!("profile: {} records -> {path} ({format})", records.len());
            }
            result = result.and(written);
        }
        if let Some((path, recorder)) = &self.record {
            let flushed = recorder
                .finish()
                .map_err(|e| format!("--record {path}: {e}"));
            if flushed.is_ok() {
                eprintln!(
                    "recording: {} queries -> {path}",
                    recorder.records_written()
                );
            }
            result = result.and(flushed);
        }
        if let Some((path, tl)) = &self.timeline {
            trajsim_obs::timeline::set_timeline(None);
            let doc = tl.to_json(trajsim_obs::metrics::global());
            let written = serde_json::to_string_pretty(&doc)
                .map_err(|e| e.to_string())
                .and_then(|text| {
                    std::fs::write(path, text + "\n").map_err(|e| format!("write {path}: {e}"))
                });
            if written.is_ok() {
                // To stdout, not stderr: under --trace, stderr must stay
                // pure JSON lines (CI validates every line parses).
                println!(
                    "timeline: {} intervals over {} queries -> {path}",
                    tl.intervals_retained(),
                    tl.queries()
                );
            }
            result = result.and(written);
        }
        if self.profile.is_some() || self.record.is_some() {
            match self.trace_level {
                Some(lvl) => {
                    trajsim_obs::set_sink(Some(Arc::new(trajsim_obs::JsonLinesSink::stderr())));
                    trajsim_obs::set_level(lvl);
                }
                None => {
                    trajsim_obs::set_sink(None);
                    trajsim_obs::set_level(trajsim_obs::Level::Off);
                }
            }
        }
        // Last: every output above is already on disk, so a scraper
        // using the hold window sees the run's final state. Shutdown is
        // graceful — an in-flight scrape finishes before the join.
        if let Some((server, hold)) = &self.serve {
            if *hold > 0 {
                println!("telemetry endpoint: holding {hold}s before shutdown");
                std::thread::sleep(std::time::Duration::from_secs(*hold));
            }
            server.shutdown();
        }
        result
    }
}

/// Dispatches the parsed command line.
pub fn dispatch(argv: &[String]) -> Result<(), String> {
    let parsed = Parsed::parse(argv)?;
    let threads: usize = parsed.get_or("threads", 0usize)?;
    trajsim_parallel::set_num_threads(threads);
    let telemetry = Telemetry::from_args(&parsed)?;
    telemetry.install();
    let result = match parsed.positional(0) {
        Some("generate") => generate(&parsed),
        Some("convert") => convert(&parsed),
        Some("stats") => stats(&parsed),
        Some("knn") => knn(&parsed, &telemetry),
        Some("explain") => explain(&parsed, &telemetry),
        Some("range") => range(&parsed, &telemetry),
        Some("replay") => replay(&parsed, &telemetry),
        Some("slow") => slow(&parsed),
        Some("slo") => slo(&parsed),
        Some("watch") => watch(&parsed),
        Some("cluster") => cluster(&parsed),
        Some(other) => Err(format!("unknown command {other:?}\n{USAGE}")),
        None => Err(USAGE.to_string()),
    };
    // Export whatever was collected even when the command failed — a
    // profile of the work done before the error is still useful.
    let finished = telemetry.finish();
    result.and(finished)
}

fn load(path: &str) -> Result<Dataset<2>, String> {
    let file = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    let reader = BufReader::new(file);
    let ds = if Path::new(path).extension().is_some_and(|e| e == "bin") {
        trajsim_io::read_binary(reader).map_err(|e| e.to_string())?
    } else {
        trajsim_io::read_csv(reader).map_err(|e| e.to_string())?
    };
    if ds.is_empty() {
        return Err(format!("{path}: empty data set"));
    }
    Ok(ds)
}

fn store(path: &str, ds: &Dataset<2>) -> Result<(), String> {
    let file = File::create(path).map_err(|e| format!("create {path}: {e}"))?;
    let writer = BufWriter::new(file);
    if Path::new(path).extension().is_some_and(|e| e == "bin") {
        trajsim_io::write_binary(writer, ds).map_err(|e| e.to_string())
    } else {
        trajsim_io::write_csv(writer, ds).map_err(|e| e.to_string())
    }
}

fn pick_eps(parsed: &Parsed, ds: &Dataset<2>) -> Result<MatchThreshold, String> {
    let default = max_std_dev(ds.trajectories()).map_err(|e| e.to_string())? * 0.25;
    let eps: f64 = parsed.get_or("eps", default)?;
    MatchThreshold::new(eps).map_err(|e| e.to_string())
}

fn generate(parsed: &Parsed) -> Result<(), String> {
    let kind = parsed
        .positional(1)
        .ok_or("generate: missing data set kind")?;
    let out: String = parsed.require("o")?;
    let seed: u64 = parsed.get_or("seed", 42u64)?;
    let n: usize = parsed.get_or("n", 1000usize)?;
    let ds = match kind {
        "nhl" => trajsim_data::nhl_like(seed, n),
        "mixed" => trajsim_data::mixed_like(seed, n),
        "walk" => trajsim_data::random_walk_set_spread(
            &mut seeded_rng(seed),
            n,
            LengthDistribution::Uniform { min: 30, max: 256 },
            {
                let spread: f64 = parsed.get_or("spread", 0.0f64)?;
                if !spread.is_finite() || spread < 0.0 {
                    return Err(format!("option --spread: must be non-negative ({spread})"));
                }
                spread
            },
        ),
        "asl" => trajsim_data::asl_retrieval_like(seed),
        "kungfu" => trajsim_data::kungfu_like(seed),
        "slip" => trajsim_data::slip_like(seed),
        other => return Err(format!("unknown data set kind {other:?}")),
    };
    store(&out, &ds)?;
    println!("wrote {} trajectories to {out}", ds.len());
    Ok(())
}

fn convert(parsed: &Parsed) -> Result<(), String> {
    let (input, output) = match (parsed.positional(1), parsed.positional(2)) {
        (Some(i), Some(o)) => (i, o),
        _ => return Err("convert: need <in> and <out>".into()),
    };
    let ds = load(input)?;
    store(output, &ds)?;
    println!("converted {} trajectories: {input} -> {output}", ds.len());
    Ok(())
}

/// `trajsim stats`: dataset statistics for a data file, or — via the
/// `show`/`merge`/`diff` subcommands — the persisted workload stats
/// store built from flight recordings.
fn stats(parsed: &Parsed) -> Result<(), String> {
    match parsed.positional(1) {
        Some("show") => stats_show(parsed),
        Some("merge") => stats_merge(parsed),
        Some("diff") => stats_diff(parsed),
        Some(path) => dataset_stats(path),
        None => Err("stats: missing file (or a show/merge/diff subcommand)".into()),
    }
}

/// `trajsim stats show <recording|store>`: aggregates (if needed) and
/// renders the per-filter selectivity and latency-percentile table.
fn stats_show(parsed: &Parsed) -> Result<(), String> {
    let input = parsed
        .positional(2)
        .ok_or("stats show: missing input (a flight recording or stats store)")?;
    print!("{}", read_stats_input(input)?.render());
    Ok(())
}

/// `trajsim stats merge <in>... -o FILE`: folds any mix of flight
/// recordings and existing stores into one persisted store document.
fn stats_merge(parsed: &Parsed) -> Result<(), String> {
    let out: String = parsed.require("o")?;
    ensure_writable("-o", &out)?;
    if parsed.positional(2).is_none() {
        return Err("stats merge: need at least one input recording or store".into());
    }
    let mut merged = WorkloadStats::default();
    let mut inputs = 0usize;
    while let Some(input) = parsed.positional(2 + inputs) {
        merged
            .merge(&read_stats_input(input)?)
            .map_err(|e| format!("{input}: {e}"))?;
        inputs += 1;
    }
    let text = serde_json::to_string_pretty(&merged.to_json()).map_err(|e| e.to_string())?;
    std::fs::write(&out, text + "\n").map_err(|e| format!("write {out}: {e}"))?;
    println!(
        "merged {inputs} inputs ({} queries over {} runs) -> {out}",
        merged.queries, merged.runs
    );
    Ok(())
}

/// `trajsim stats diff <a> <b>`: compares two recordings/stores.
/// Workload-shape quantities (candidate flow, selectivity, pruning
/// power) must match near-exactly; latency percentiles get the relative
/// `--latency-tolerance` (default 0.5 = ±50%). With `--check`, drift is
/// an error — the CI regression mode.
fn stats_diff(parsed: &Parsed) -> Result<(), String> {
    let (a, b) = match (parsed.positional(2), parsed.positional(3)) {
        (Some(a), Some(b)) => (a, b),
        _ => return Err("stats diff: need two inputs (recordings or stores)".into()),
    };
    let tolerance: f64 = parsed.get_or("latency-tolerance", 0.5f64)?;
    if !(0.0..=1.0).contains(&tolerance) {
        return Err("option --latency-tolerance: must be in 0..=1".into());
    }
    let shape_tolerance: f64 = parsed.get_or("shape-tolerance", 0.0f64)?;
    if !(0.0..=1.0).contains(&shape_tolerance) {
        return Err("option --shape-tolerance: must be in 0..=1".into());
    }
    let (wa, wb) = (read_stats_input(a)?, read_stats_input(b)?);
    let report = DiffReport::compare_with(&wa, &wb, tolerance, shape_tolerance);
    print!("{}", report.render());
    if parsed.flag("attribute") {
        println!("attribution (per-stage share of total latency):");
        print!("{}", Attribution::compare(&wa, &wb).render());
    }
    if parsed.flag("check") && report.drifted() {
        return Err("stats diff: significant drift between inputs".into());
    }
    Ok(())
}

/// `trajsim slow <recording>`: the slow-query forensics view — ranks the
/// recording's worst queries by total latency (which tail-sampled
/// recordings keep in full by construction) and attributes each one's
/// time to pipeline stages.
fn slow(parsed: &Parsed) -> Result<(), String> {
    let path = parsed.positional(1).ok_or("slow: missing recording")?;
    let top: usize = parsed.get_or("top", 10usize)?;
    if top == 0 {
        return Err("option --top: must be at least 1".into());
    }
    let rec = Recording::read(path)?;
    print!("{}", SlowReport::from_recording(&rec, top).render());
    Ok(())
}

/// `trajsim slo ...`: service-level-objective tooling. Only `check` for
/// now; the subcommand level leaves room for `slo render`-style tools.
fn slo(parsed: &Parsed) -> Result<(), String> {
    match parsed.positional(1) {
        Some("check") => slo_check(parsed),
        Some(other) => Err(format!(
            "slo: unknown subcommand {other:?} (expected check)"
        )),
        None => Err("slo: missing subcommand (usage: trajsim slo check <spec> \
                     <recording|store|timeline>)"
            .into()),
    }
}

/// `trajsim slo check <spec> <input>`: evaluates an SLO spec against a
/// flight recording, a stats store, or a metrics timeline, and exits
/// nonzero on violation — the CI gate. The input kind is detected from
/// its `format` field: a timeline document gets the sliding burn-rate
/// windows, anything else goes through `read_stats_input`.
fn slo_check(parsed: &Parsed) -> Result<(), String> {
    let spec_path = parsed.positional(2).ok_or("slo check: missing spec file")?;
    let input = parsed
        .positional(3)
        .ok_or("slo check: missing input (a recording, stats store, or timeline)")?;
    let spec_text = std::fs::read_to_string(spec_path)
        .map_err(|e| format!("slo check: open {spec_path}: {e}"))?;
    let spec =
        trajsim_profile::SloSpec::parse(&spec_text).map_err(|e| format!("{spec_path}: {e}"))?;
    let input_text =
        std::fs::read_to_string(input).map_err(|e| format!("slo check: open {input}: {e}"))?;
    let timeline_doc = serde_json::from_str(&input_text).ok().filter(|doc| {
        doc.get("format").and_then(serde_json::Value::as_str) == Some(trajsim_obs::TIMELINE_FORMAT)
    });
    let report = match timeline_doc {
        Some(doc) => {
            trajsim_profile::evaluate_timeline(&spec, &doc).map_err(|e| format!("{input}: {e}"))?
        }
        None => trajsim_profile::evaluate_stats(&spec, &read_stats_input(input)?),
    };
    print!("{}", report.render());
    if report.violated() {
        return Err(format!("slo check: {input} violates {spec_path}"));
    }
    Ok(())
}

/// `trajsim watch ADDR`: polls a `--serve-metrics` endpoint and prints
/// one line per interval — qps, p99 latency, and the dominant stage —
/// computed by diffing successive `/metrics` scrapes (counter deltas,
/// histogram bucket deltas through the shared quantile estimator).
fn watch(parsed: &Parsed) -> Result<(), String> {
    let addr = parsed
        .positional(1)
        .ok_or("watch: missing ADDR (host:port of a --serve-metrics endpoint)")?;
    let every: f64 = parsed.get_or("every", 2.0f64)?;
    if !(every > 0.0 && every.is_finite()) {
        return Err("option --every: must be a positive number of seconds".into());
    }
    let count: u64 = parsed.get_or("count", 0u64)?; // 0 = until interrupted
    let timeout = std::time::Duration::from_secs(5);
    let scrape = || -> Result<trajsim_obs::exposition::Scrape, String> {
        let (status, body) = trajsim_obs::http_get(addr, "/metrics", timeout)?;
        if status != 200 {
            return Err(format!("watch: {addr}/metrics answered HTTP {status}"));
        }
        trajsim_obs::exposition::parse(&body).map_err(|e| format!("watch: {addr}: {e}"))
    };
    let mut prev = scrape()?;
    let mut prev_t = std::time::Instant::now();
    let mut printed = 0u64;
    while count == 0 || printed < count {
        std::thread::sleep(std::time::Duration::from_secs_f64(every));
        let cur = scrape()?;
        let now = std::time::Instant::now();
        let dt = now.duration_since(prev_t).as_secs_f64().max(1e-9);
        println!("{}", watch_line(&prev, &cur, dt));
        prev = cur;
        prev_t = now;
        printed += 1;
    }
    Ok(())
}

/// One `watch` rollup line from two consecutive scrapes `dt` seconds
/// apart. Pure so the interval arithmetic is unit-testable without a
/// live endpoint.
fn watch_line(
    prev: &trajsim_obs::exposition::Scrape,
    cur: &trajsim_obs::exposition::Scrape,
    dt: f64,
) -> String {
    let delta = |name: &str| -> u64 {
        cur.sample_u64(name)
            .unwrap_or(0)
            .saturating_sub(prev.sample_u64(name).unwrap_or(0))
    };
    let queries = delta("knn_queries_total");
    let total = cur.sample_u64("knn_queries_total").unwrap_or(0);
    if queries == 0 {
        return format!("idle: 0 queries this interval ({total} total)");
    }
    let qps = queries as f64 / dt;
    // p99 of this interval: the bucket deltas of knn.query_ns.
    let p99 = match (
        cur.histograms.get("knn_query_ns"),
        prev.histograms.get("knn_query_ns"),
    ) {
        (Some(c), Some(p)) if c.bounds == p.bounds && c.counts.len() == p.counts.len() => {
            let deltas: Vec<u64> = c
                .counts
                .iter()
                .zip(&p.counts)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect();
            trajsim_obs::metrics::quantile_from_buckets(&c.bounds, &deltas, 0.99)
        }
        (Some(c), None) => trajsim_obs::metrics::quantile_from_buckets(&c.bounds, &c.counts, 0.99),
        _ => 0.0,
    };
    // Dominant stage: largest knn.stage.*_ns increment this interval.
    let stages = ["setup", "histogram", "qgram", "triangle", "refine"];
    let mut dominant = ("none", 0u64);
    let mut stage_sum = 0u64;
    for s in stages {
        let d = delta(&format!("knn_stage_{s}_ns_total"));
        stage_sum += d;
        if d > dominant.1 {
            dominant = (s, d);
        }
    }
    let share = if stage_sum == 0 {
        0.0
    } else {
        dominant.1 as f64 * 100.0 / stage_sum as f64
    };
    format!(
        "{qps:>8.1} q/s  p99 {:>9.3} ms  dominant {} ({share:.0}% of stage time)  [{total} queries total]",
        p99 / 1e6,
        dominant.0,
    )
}

fn dataset_stats(path: &str) -> Result<(), String> {
    let ds = load(path)?;
    let lens: Vec<usize> = ds.iter().map(|(_, t)| t.len()).collect();
    let total: usize = lens.iter().sum();
    let (mut lo, mut hi) = (
        trajsim_core::Point2::xy(f64::INFINITY, f64::INFINITY),
        trajsim_core::Point2::xy(f64::NEG_INFINITY, f64::NEG_INFINITY),
    );
    for (_, t) in ds.iter() {
        if let Ok((l, h)) = t.bounding_box() {
            lo = trajsim_core::Point2::xy(lo.x().min(l.x()), lo.y().min(l.y()));
            hi = trajsim_core::Point2::xy(hi.x().max(h.x()), hi.y().max(h.y()));
        }
    }
    println!("{path}:");
    println!("  trajectories: {}", ds.len());
    println!("  samples:      {total}");
    println!(
        "  lengths:      min {} / mean {:.1} / max {}",
        lens.iter().min().unwrap(),
        total as f64 / ds.len() as f64,
        lens.iter().max().unwrap()
    );
    println!(
        "  extent:       x [{:.2}, {:.2}], y [{:.2}, {:.2}]",
        lo.x(),
        hi.x(),
        lo.y(),
        hi.y()
    );
    Ok(())
}

fn report(result: &KnnResult) {
    for n in &result.neighbors {
        println!("  id {:>6}  EDR {:>5}", n.id, n.dist);
    }
    println!(
        "  [{} of {} candidates pruned ({:.1}%): {} histogram, {} q-gram, {} near-triangle]",
        result.stats.pruned(),
        result.stats.database_size,
        result.stats.pruning_power() * 100.0,
        result.stats.pruned_by_histogram,
        result.stats.pruned_by_qgram,
        result.stats.pruned_by_triangle,
    );
    println!(
        "  [{} true EDR computations, {} DP cells filled]",
        result.stats.edr_computed, result.stats.dp_cells,
    );
    let (threads, source) = trajsim_parallel::num_threads_with_source();
    println!("  [threads: {threads} ({})]", source.as_str());
    report_stages(&result.stats.timings);
}

/// Millisecond rendering of a nanosecond stage time.
fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Per-query latency percentiles from the live `knn.query_ns` histogram
/// — the same bucket estimator `--metrics-out` snapshots and the stats
/// store persists, so all three report identical figures for identical
/// counts. Process-wide: covers every query this run answered so far.
fn report_latency_percentiles() {
    let h = trajsim_obs::metrics::global().histogram("knn.query_ns");
    if h.count() == 0 {
        return;
    }
    println!(
        "    latency ({} queries this run): p50 {:.3} ms  p95 {:.3} ms  p99 {:.3} ms",
        h.count(),
        h.quantile(0.50) / 1e6,
        h.quantile(0.95) / 1e6,
        h.quantile(0.99) / 1e6,
    );
}

/// The per-stage timing table: one row per stage that did any work.
fn report_stages(t: &trajsim_prune::StageTimings) {
    println!("  stage timings (wall, per this query):");
    println!(
        "    {:<12} {:>10} {:>12} {:>12}",
        "stage", "ms", "cand. in", "cand. out"
    );
    if t.setup_ns > 0 {
        println!(
            "    {:<12} {:>10.3} {:>12} {:>12}",
            "setup",
            ms(t.setup_ns),
            "-",
            "-"
        );
    }
    for (name, s) in [
        ("histogram", &t.histogram),
        ("qgram", &t.qgram),
        ("triangle", &t.triangle),
    ] {
        if s.filter_ns > 0 || s.candidates_in > 0 {
            println!(
                "    {:<12} {:>10.3} {:>12} {:>12}",
                name,
                ms(s.filter_ns),
                s.candidates_in,
                s.candidates_out
            );
        }
    }
    println!(
        "    {:<12} {:>10.3} {:>12} {:>12}",
        "refine",
        ms(t.refine_ns),
        "-",
        "-"
    );
    println!(
        "    {:<12} {:>10.3} {:>12} {:>12}",
        "other",
        ms(t.other_ns()),
        "-",
        "-"
    );
    println!(
        "    {:<12} {:>10.3} {:>12} {:>12}",
        "total",
        ms(t.total_ns),
        "-",
        "-"
    );
    report_latency_percentiles();
}

/// The batched timing table: stage wall time summed over the workload,
/// then amortized per batch and per query, so the shared-work saving
/// (setup and filter passes paid once per batch) is visible next to the
/// per-query cost a caller actually experiences.
fn report_stages_batched(t: &trajsim_prune::StageTimings, batches: usize, queries: usize) {
    println!("  stage timings (wall, whole workload / per batch / per query):");
    println!(
        "    {:<12} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "stage", "ms", "ms/batch", "ms/query", "cand. in", "cand. out"
    );
    let b = batches.max(1) as f64;
    let q = queries.max(1) as f64;
    let row = |name: &str, ns: u64, cands: Option<(u64, u64)>| {
        let (cin, cout) = match cands {
            Some((i, o)) => (i.to_string(), o.to_string()),
            None => ("-".into(), "-".into()),
        };
        println!(
            "    {:<12} {:>10.3} {:>10.3} {:>10.3} {:>12} {:>12}",
            name,
            ms(ns),
            ms(ns) / b,
            ms(ns) / q,
            cin,
            cout
        );
    };
    row("setup", t.setup_ns, None);
    for (name, s) in [
        ("histogram", &t.histogram),
        ("qgram", &t.qgram),
        ("triangle", &t.triangle),
    ] {
        if s.filter_ns > 0 || s.candidates_in > 0 {
            row(
                name,
                s.filter_ns,
                Some((s.candidates_in as u64, s.candidates_out as u64)),
            );
        }
    }
    row("refine", t.refine_ns, None);
    row("other", t.other_ns(), None);
    row("total", t.total_ns, None);
    report_latency_percentiles();
}

/// A built k-NN engine behind two closures, so `knn` and `explain`
/// construct engines identically (build once, query many): one query at
/// a time, or a whole batch through the engine's shared-work
/// `knn_batch` path (engines without a batched scan fall back to
/// per-query execution).
type QueryFn<'a> = Box<dyn Fn(&Trajectory<2>, usize) -> KnnResult + 'a>;
type BatchFn<'a> = Box<dyn Fn(&[Trajectory<2>], usize) -> Vec<KnnResult> + 'a>;

struct Engine<'a> {
    query: QueryFn<'a>,
    batch: BatchFn<'a>,
}

/// Wraps one built engine value into both calling conventions.
fn engine_pair<'a, E: KnnEngine<2> + Sync + 'a>(e: E) -> Engine<'a> {
    let e = std::rc::Rc::new(e);
    let shared = e.clone();
    Engine {
        query: Box::new(move |q, k| e.knn(q, k)),
        batch: Box::new(move |qs, k| shared.knn_batch(qs, k)),
    }
}

/// Resolves `--index`: `art` asks the combined engine to generate
/// candidates through the adaptive radix signature index.
fn pick_index(parsed: &Parsed) -> Result<bool, String> {
    match parsed.get("index") {
        None => Ok(false),
        Some("art") => Ok(true),
        Some(other) => Err(format!(
            "option --index: unknown index {other:?} (supported: art)"
        )),
    }
}

/// Builds the named engine over `ds`. `max_triangle` bounds the
/// reference pool of the (near-)triangle filter where one is used;
/// `index` additionally builds the ART signature index (combined engine
/// only — the other engines have no candidate-generation stage to
/// replace).
fn build_engine<'a>(
    ds: &'a Dataset<2>,
    eps: MatchThreshold,
    name: &str,
    max_triangle: usize,
    index: bool,
) -> Result<Engine<'a>, String> {
    if index && name != "combined" {
        return Err(format!(
            "--index art requires the combined engine (got {name:?})"
        ));
    }
    Ok(match name {
        // The parallel scan degrades to the serial one on a single worker.
        "scan" => engine_pair(SequentialScan::new(ds, eps).with_parallel()),
        "qgram" => engine_pair(QgramKnn::build(ds, eps, 1, QgramVariant::MergeJoin2d)),
        "histogram" => engine_pair(HistogramKnn::build(
            ds,
            eps,
            HistogramVariant::PerDimension,
            ScanMode::Sorted,
        )),
        "triangle" => engine_pair(NearTriangleKnn::build(ds, eps, max_triangle)),
        "combined" => {
            let config = CombinedConfig {
                max_triangle,
                ..Default::default()
            };
            let engine = CombinedKnn::build(ds, eps, config);
            engine_pair(if index { engine.with_index() } else { engine })
        }
        other => return Err(format!("unknown engine {other:?}")),
    })
}

/// Resolves the query selection shared by `knn` and `explain`: exactly
/// one of `--query I` (that trajectory) or `--queries N` (the first N),
/// with `--batch B` only meaningful for a multi-query workload.
enum Workload {
    Single(usize),
    /// The first `queries` trajectories; `batch: None` answers them one
    /// at a time (the pre-batching behaviour), `Some(b)` routes batches
    /// of `b` through the engine's shared-work path.
    Multi {
        queries: usize,
        batch: Option<usize>,
    },
}

fn pick_workload(parsed: &Parsed, cmd: &str, ds: &Dataset<2>) -> Result<Workload, String> {
    let batch: Option<usize> = match parsed.get("batch") {
        Some(_) => Some(parsed.require("batch")?),
        None => None,
    };
    match (parsed.get("query"), parsed.get("queries")) {
        (Some(_), None) => {
            if batch.is_some() {
                return Err(format!(
                    "{cmd}: --batch amortizes one dataset pass over many queries; \
                     use --queries N instead of --query"
                ));
            }
            let id: usize = parsed.require("query")?;
            if id >= ds.len() {
                return Err(format!("query id {id} out of range (N = {})", ds.len()));
            }
            Ok(Workload::Single(id))
        }
        (None, Some(_)) => {
            let n: usize = parsed.require("queries")?;
            if n == 0 || n > ds.len() {
                return Err(format!("--queries must be in 1..={}", ds.len()));
            }
            if let Some(b) = batch {
                if b == 0 {
                    return Err("option --batch: must be at least 1".into());
                }
                if b > n {
                    return Err(format!(
                        "option --batch: batch size {b} exceeds the workload of {n} queries"
                    ));
                }
            }
            Ok(Workload::Multi { queries: n, batch })
        }
        _ => Err(format!(
            "{cmd}: need exactly one of --query I or --queries N"
        )),
    }
}

/// The engine-selection knobs a recording's header must carry for
/// `trajsim replay` to rebuild the same engine.
struct EngineSel<'a> {
    name: &'a str,
    max_triangle: usize,
    index: bool,
}

/// The resolved configuration a recording's header carries — enough for
/// `trajsim replay` to rebuild the dataset, engine, and workload.
fn workload_meta(
    command: &str,
    data: &str,
    engine: &EngineSel<'_>,
    k: usize,
    eps: f64,
    workload: &Workload,
) -> serde_json::Value {
    let (threads, _) = trajsim_parallel::num_threads_with_source();
    let w = match workload {
        Workload::Single(id) => serde_json::json!({ "query": *id }),
        Workload::Multi { queries, batch } => serde_json::json!({
            "queries": *queries,
            "batch": match batch {
                Some(b) => serde_json::json!(*b),
                None => serde_json::Value::Null,
            },
        }),
    };
    serde_json::json!({
        "command": command,
        "data": data,
        "engine": engine.name,
        "k": k,
        "eps": eps,
        "max_triangle": engine.max_triangle,
        "index": if engine.index { "art" } else { "none" },
        "threads": threads,
        "workload": w,
    })
}

fn knn(parsed: &Parsed, telemetry: &Telemetry) -> Result<(), String> {
    let path = parsed.positional(1).ok_or("knn: missing file")?;
    if let Some(out) = parsed.get("metrics-out") {
        ensure_writable("--metrics-out", out)?;
    }
    let ds = load(path)?.normalize();
    let k: usize = parsed.get_or("k", 10usize)?;
    let eps = pick_eps(parsed, &ds)?;
    let engine_name: String = parsed.get_or("engine", "combined".to_string())?;
    let max_triangle: usize = parsed.get_or("max-triangle", 100usize)?;
    let index = pick_index(parsed)?;
    let engine = build_engine(&ds, eps, &engine_name, max_triangle, index)?;
    let workload = pick_workload(parsed, "knn", &ds)?;
    telemetry.record_header(workload_meta(
        "knn",
        path,
        &EngineSel {
            name: &engine_name,
            max_triangle,
            index,
        },
        k,
        eps.value(),
        &workload,
    ))?;
    match workload {
        Workload::Single(query_id) => {
            let query = ds.get(query_id).expect("checked in pick_workload");
            println!(
                "k-NN: query {query_id}, k = {k}, eps = {:.4}, engine = {engine_name}",
                eps.value()
            );
            let result = (engine.query)(query, k);
            report(&result);
            if let Some(out) = parsed.get("metrics-out") {
                write_metrics(
                    out,
                    &engine_name,
                    serde_json::json!(query_id),
                    None,
                    k,
                    eps.value(),
                    &result.stats,
                )?;
                println!("  [metrics written to {out}]");
            }
        }
        Workload::Multi { queries, batch } => {
            match batch {
                Some(b) => println!(
                    "k-NN: queries 0..{queries}, k = {k}, eps = {:.4}, \
                     engine = {engine_name}, batch = {b}",
                    eps.value()
                ),
                None => println!(
                    "k-NN: queries 0..{queries}, k = {k}, eps = {:.4}, \
                     engine = {engine_name}, per-query",
                    eps.value()
                ),
            }
            let workload: Vec<Trajectory<2>> = (0..queries)
                .map(|i| ds.get(i).expect("checked in pick_workload").clone())
                .collect();
            let step = batch.unwrap_or(1);
            let t = std::time::Instant::now();
            let mut acc = QueryStats::default();
            let mut batches = 0usize;
            let mut shown = 0usize;
            for chunk in workload.chunks(step) {
                let results = match batch {
                    Some(_) => (engine.batch)(chunk, k),
                    None => chunk.iter().map(|q| (engine.query)(q, k)).collect(),
                };
                for (qi, r) in results.iter().enumerate() {
                    // Per-query answers stay visible for small workloads;
                    // past 8 queries this is a throughput run and only the
                    // aggregate matters.
                    if shown < 8 {
                        let pairs: Vec<String> = r
                            .neighbors
                            .iter()
                            .map(|n| format!("{}:{}", n.id, n.dist))
                            .collect();
                        println!("  query {:>4}: [{}]", batches * step + qi, pairs.join(", "));
                        shown += 1;
                        if shown == 8 && queries > 8 {
                            println!("  ... ({} more queries)", queries - 8);
                        }
                    }
                    acc.accumulate(&r.stats);
                }
                batches += 1;
            }
            let wall_s = t.elapsed().as_secs_f64();
            println!(
                "  [{queries} queries in {batches} batches: {:.3} ms total, {:.3} ms/batch, \
                 {:.3} ms/query amortized, {:.1} queries/sec]",
                wall_s * 1e3,
                wall_s * 1e3 / batches as f64,
                wall_s * 1e3 / queries as f64,
                queries as f64 / wall_s.max(f64::MIN_POSITIVE),
            );
            println!(
                "  [{} of {} candidates pruned ({:.1}%), {} true EDR computations]",
                acc.pruned(),
                acc.database_size,
                acc.pruning_power() * 100.0,
                acc.edr_computed,
            );
            report_stages_batched(&acc.timings, batches, queries);
            if let Some(out) = parsed.get("metrics-out") {
                write_metrics(
                    out,
                    &engine_name,
                    serde_json::json!({ "first": 0, "count": queries }),
                    batch,
                    k,
                    eps.value(),
                    &acc,
                )?;
                println!("  [metrics written to {out}]");
            }
        }
    }
    Ok(())
}

/// `trajsim explain`: runs k-NN through the chosen engine — one query
/// (`--query I`) or a workload of the first N trajectories (`--queries
/// N`, optionally in batches of `--batch B` through the shared-work
/// path) — and prints the per-stage pruning-power report built from the
/// live query statistics.
fn explain(parsed: &Parsed, telemetry: &Telemetry) -> Result<(), String> {
    let path = parsed.positional(1).ok_or("explain: missing file")?;
    if let Some(out) = parsed.get("json") {
        ensure_writable("--json", out)?;
    }
    let ds = load(path)?.normalize();
    let k: usize = parsed.get_or("k", 10usize)?;
    let eps = pick_eps(parsed, &ds)?;
    let engine: String = parsed.get_or("engine", "combined".to_string())?;
    let max_triangle: usize = parsed.get_or("max-triangle", 100usize)?;
    let index = pick_index(parsed)?;
    let run = build_engine(&ds, eps, &engine, max_triangle, index)?;
    let workload = pick_workload(parsed, "explain", &ds)?;
    telemetry.record_header(workload_meta(
        "explain",
        path,
        &EngineSel {
            name: &engine,
            max_triangle,
            index,
        },
        k,
        eps.value(),
        &workload,
    ))?;
    let mut acc = QueryStats::default();
    let queries = match workload {
        Workload::Single(id) => {
            acc.accumulate(&(run.query)(ds.get(id).expect("checked"), k).stats);
            1
        }
        Workload::Multi { queries, batch } => {
            let workload: Vec<Trajectory<2>> = (0..queries)
                .map(|i| ds.get(i).expect("checked").clone())
                .collect();
            for chunk in workload.chunks(batch.unwrap_or(1)) {
                let results = match batch {
                    Some(_) => (run.batch)(chunk, k),
                    None => chunk.iter().map(|q| (run.query)(q, k)).collect(),
                };
                for r in results {
                    acc.accumulate(&r.stats);
                }
            }
            queries
        }
    };
    let report = trajsim_profile::ExplainReport::from_stats(&engine, queries, &acc);
    print!("{}", report.render());
    if let Some(out) = parsed.get("json") {
        let text = serde_json::to_string_pretty(&report.to_json()).map_err(|e| e.to_string())?;
        std::fs::write(out, text + "\n").map_err(|e| format!("write {out}: {e}"))?;
        println!("  [report written to {out}]");
    }
    Ok(())
}

/// Serializes the workload's stats (with stage breakdown), the resolved
/// thread configuration, and a snapshot of the global metrics registry
/// (which carries the `batch.*` and `parallel.worker_*` series for
/// batched runs). `query` describes the workload: a single id, or a
/// `{first, count}` range; `batch` is the batch size when the run went
/// through the shared-work path.
fn write_metrics(
    path: &str,
    engine: &str,
    query: serde_json::Value,
    batch: Option<usize>,
    k: usize,
    eps: f64,
    stats: &QueryStats,
) -> Result<(), String> {
    let (threads, source) = trajsim_parallel::num_threads_with_source();
    // Refresh the process.* gauges so the snapshot carries the same
    // liveness signals `/metrics` and `/healthz` serve.
    trajsim_obs::process::update(trajsim_obs::metrics::global());
    let doc = serde_json::json!({
        "engine": engine,
        "query": query,
        "batch": match batch {
            Some(b) => serde_json::json!(b),
            None => serde_json::Value::Null,
        },
        "k": k,
        "eps": eps,
        "threads": {
            "count": threads,
            "source": source.as_str(),
        },
        "stats": stats.to_json(),
        "metrics": trajsim_obs::metrics::global().snapshot_json(),
    });
    let text = serde_json::to_string_pretty(&doc).map_err(|e| e.to_string())?;
    std::fs::write(path, text + "\n").map_err(|e| format!("write {path}: {e}"))
}

fn range(parsed: &Parsed, telemetry: &Telemetry) -> Result<(), String> {
    let path = parsed.positional(1).ok_or("range: missing file")?;
    let ds = load(path)?.normalize();
    let query_id: usize = parsed.require("query")?;
    let edits: usize = parsed.require("edits")?;
    let query = ds
        .get(query_id)
        .ok_or_else(|| format!("query id {query_id} out of range (N = {})", ds.len()))?
        .clone();
    let eps = pick_eps(parsed, &ds)?;
    let (threads, _) = trajsim_parallel::num_threads_with_source();
    telemetry.record_header(serde_json::json!({
        "command": "range",
        "data": path,
        "engine": "range",
        "eps": eps.value(),
        "threads": threads,
        "workload": { "query": query_id, "edits": edits },
    }))?;
    let hits = range_query(&ds, eps, &query, edits, 1);
    println!(
        "range: query {query_id}, within {edits} edits, eps = {:.4}: {} hits",
        eps.value(),
        hits.len()
    );
    for h in hits {
        println!("  id {:>6}  EDR {:>5}", h.id, h.dist);
    }
    Ok(())
}

/// `trajsim replay <recording>`: rebuilds the dataset, engine, and
/// workload from the recording's header, re-runs it while capturing a
/// fresh recording in memory through the same `finish_query` chokepoint,
/// then checks the answers and reports stage-level drift.
///
/// Answer checking is strict on distances — EDR is deterministic, so the
/// per-query distance multisets must match exactly. Neighbor *ids* may
/// legitimately permute among tied distances when a batched merge visits
/// workers in a different order; that is reported, not fatal. Timing
/// drift is compared at `--max-drift` (relative, default 0.5) and only
/// fails the run under `--check`.
fn replay(parsed: &Parsed, telemetry: &Telemetry) -> Result<(), String> {
    let rec_path = parsed
        .positional(1)
        .ok_or("replay: missing recording file")?;
    let recording = Recording::read(rec_path)?;
    let meta = &recording.meta;
    let meta_str = |key: &str| {
        meta.get(key)
            .and_then(serde_json::Value::as_str)
            .ok_or_else(|| {
                format!("replay: recording header has no meta.{key} (recorded without a header?)")
            })
    };
    let meta_u64 = |key: &str| meta.get(key).and_then(serde_json::Value::as_u64);
    let command = meta_str("command")?.to_string();
    let data = meta_str("data")?.to_string();
    let eps_v = meta
        .get("eps")
        .and_then(serde_json::Value::as_f64)
        .ok_or("replay: recording header has no meta.eps")?;
    let ds = load(&data)?.normalize();
    let eps = MatchThreshold::new(eps_v).map_err(|e| e.to_string())?;
    let workload = meta
        .get("workload")
        .cloned()
        .unwrap_or(serde_json::Value::Null);
    let w_u64 = |key: &str| workload.get(key).and_then(serde_json::Value::as_u64);
    println!(
        "replay: {rec_path} ({} recorded queries, command {command}, data {data})",
        recording.records.len()
    );

    // Capture the re-run in memory through the same emission path.
    let buf = Arc::new(std::sync::Mutex::new(Vec::<u8>::new()));
    struct SharedBuf(Arc<std::sync::Mutex<Vec<u8>>>);
    impl std::io::Write for SharedBuf {
        fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
            self.0.lock().expect("replay buffer").extend_from_slice(b);
            Ok(b.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    let capture = FlightRecorder::to_writer(Box::new(SharedBuf(buf.clone())));
    trajsim_obs::set_sink(Some(capture.clone() as Arc<dyn trajsim_obs::Sink>));
    trajsim_obs::set_level(trajsim_obs::Level::Debug);
    let run = (|| -> Result<(), String> {
        match command.as_str() {
            "range" => {
                let id = w_u64("query").ok_or("replay: range workload has no query id")? as usize;
                let edits = w_u64("edits").ok_or("replay: range workload has no edits")? as usize;
                let query = ds
                    .get(id)
                    .ok_or_else(|| format!("query id {id} out of range (N = {})", ds.len()))?
                    .clone();
                range_query(&ds, eps, &query, edits, 1);
                Ok(())
            }
            "knn" | "explain" => {
                let k = meta_u64("k").ok_or("replay: recording header has no meta.k")? as usize;
                let max_triangle = meta_u64("max_triangle").unwrap_or(100) as usize;
                let engine_name = meta_str("engine")?.to_string();
                // Recordings made before the index option default to none.
                let index = meta.get("index").and_then(serde_json::Value::as_str) == Some("art");
                let engine = build_engine(&ds, eps, &engine_name, max_triangle, index)?;
                if let Some(id) = w_u64("query") {
                    let id = id as usize;
                    let q = ds
                        .get(id)
                        .ok_or_else(|| format!("query id {id} out of range (N = {})", ds.len()))?;
                    (engine.query)(q, k);
                } else if let Some(n) = w_u64("queries") {
                    let n = n as usize;
                    if n == 0 || n > ds.len() {
                        return Err(format!(
                            "replay: recorded workload of {n} queries does not fit {data} (N = {})",
                            ds.len()
                        ));
                    }
                    let batch = w_u64("batch").map(|b| b as usize);
                    let queries: Vec<Trajectory<2>> = (0..n)
                        .map(|i| ds.get(i).expect("checked").clone())
                        .collect();
                    for chunk in queries.chunks(batch.unwrap_or(1)) {
                        match batch {
                            Some(_) => {
                                (engine.batch)(chunk, k);
                            }
                            None => {
                                for q in chunk {
                                    (engine.query)(q, k);
                                }
                            }
                        }
                    }
                } else {
                    return Err("replay: recording header has no workload description".into());
                }
                Ok(())
            }
            other => Err(format!("replay: cannot replay command {other:?}")),
        }
    })();
    // Put the tracing globals back the way the user's own flags ask for.
    trajsim_obs::set_sink(None);
    trajsim_obs::set_level(trajsim_obs::Level::Off);
    telemetry.install();
    run?;
    capture.finish().map_err(|e| format!("replay: {e}"))?;
    let text = String::from_utf8(buf.lock().expect("replay buffer").clone())
        .map_err(|e| format!("replay: captured recording is not UTF-8: {e}"))?;
    let replayed = Recording::parse(&text).map_err(|e| format!("replay: {e}"))?;

    let canon = |r: &trajsim_profile::FlightRecord| {
        let mut v: Vec<(u64, u64)> = r.neighbors.iter().map(|&(id, d)| (d, id)).collect();
        v.sort_unstable();
        v
    };
    let mut want: Vec<Vec<(u64, u64)>> = recording.records.iter().map(canon).collect();
    let mut got: Vec<Vec<(u64, u64)>> = replayed.records.iter().map(canon).collect();
    want.sort();
    got.sort();
    if want.len() != got.len() {
        return Err(format!(
            "replay: {} recorded queries but {} replayed",
            want.len(),
            got.len()
        ));
    }
    if want == got {
        println!("  neighbor sets: identical ({} queries)", got.len());
    } else {
        let dists = |qs: &[Vec<(u64, u64)>]| {
            let mut d: Vec<Vec<u64>> = qs
                .iter()
                .map(|q| q.iter().map(|&(dist, _)| dist).collect())
                .collect();
            d.sort();
            d
        };
        if dists(&want) != dists(&got) {
            return Err("replay: neighbor distances differ from the recording — \
                        the answers changed, not just their order"
                .into());
        }
        let permuted = want.iter().zip(&got).filter(|(a, b)| a != b).count();
        println!(
            "  neighbor sets: distances identical; ids permuted among tied \
             distances in up to {permuted} queries"
        );
    }

    let tolerance: f64 = parsed.get_or("max-drift", 0.5f64)?;
    if !(0.0..=1.0).contains(&tolerance) {
        return Err("option --max-drift: must be in 0..=1".into());
    }
    let report = DiffReport::compare(
        &WorkloadStats::from_recording(&recording),
        &WorkloadStats::from_recording(&replayed),
        tolerance,
    );
    print!("{}", report.render());
    if parsed.flag("check") && report.drifted() {
        return Err("replay: drift vs the recording exceeds --max-drift".into());
    }
    Ok(())
}

fn cluster(parsed: &Parsed) -> Result<(), String> {
    let path = parsed.positional(1).ok_or("cluster: missing file")?;
    let ds = load(path)?.normalize();
    let k: usize = parsed.get_or("k", 2usize)?;
    if k == 0 || k > ds.len() {
        return Err(format!("--k must be in 1..={}", ds.len()));
    }
    let eps = pick_eps(parsed, &ds)?;
    let measure = trajsim_distance::Measure::Edr { eps };
    let matrix = DistanceMatrix::compute(&ds, &measure);
    let assignment = agglomerative(&matrix, k, Linkage::Complete);
    println!(
        "clustering {} trajectories into {k} clusters (EDR, complete linkage):",
        ds.len()
    );
    for c in 0..k {
        let members: Vec<String> = assignment
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a == c)
            .map(|(i, _)| i.to_string())
            .collect();
        println!("  cluster {c}: {}", members.join(", "));
    }
    if parsed.flag("tree") {
        println!("\ndendrogram:");
        print!("{}", Dendrogram::build(&matrix, Linkage::Complete).render());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(args: &[&str]) -> Result<(), String> {
        dispatch(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    /// Tests that install or reset the process-global tracing sink hold
    /// this lock so they cannot clobber each other's captures.
    static SINK_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn sink_guard() -> std::sync::MutexGuard<'static, ()> {
        SINK_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("trajsim-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn usage_and_unknown_commands() {
        assert!(run(&[]).unwrap_err().contains("usage"));
        assert!(run(&["frobnicate"])
            .unwrap_err()
            .contains("unknown command"));
    }

    #[test]
    fn generate_stats_convert_roundtrip() {
        let csv = tmp("walks.csv");
        let bin = tmp("walks.bin");
        run(&["generate", "walk", "--n", "20", "--seed", "7", "-o", &csv]).unwrap();
        run(&["stats", &csv]).unwrap();
        run(&["convert", &csv, &bin]).unwrap();
        let a = load(&csv).unwrap();
        let b = load(&bin).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.trajectories().iter().zip(b.trajectories()) {
            assert_eq!(x.points(), y.points());
        }
    }

    #[test]
    fn knn_and_range_run_on_generated_data() {
        // Holds the sink lock like every query-running test: a recording
        // test in another thread must not capture this test's queries
        // through the process-global sink.
        let _g = sink_guard();
        let csv = tmp("knn.csv");
        run(&["generate", "walk", "--n", "30", "--seed", "3", "-o", &csv]).unwrap();
        for engine in ["scan", "qgram", "histogram", "combined"] {
            run(&["knn", &csv, "--query", "0", "--k", "3", "--engine", engine]).unwrap();
        }
        run(&["range", &csv, "--query", "0", "--edits", "5"]).unwrap();
        // Bad engine and bad query id fail cleanly.
        assert!(run(&["knn", &csv, "--query", "0", "--engine", "magic"]).is_err());
        assert!(run(&["knn", &csv, "--query", "9999"]).is_err());
    }

    #[test]
    fn index_flag_builds_the_art_engine_with_identical_answers() {
        let _g = sink_guard();
        let csv = tmp("index.csv");
        run(&[
            "generate", "walk", "--n", "30", "--seed", "43", "--spread", "200", "-o", &csv,
        ])
        .unwrap();
        run(&["knn", &csv, "--query", "0", "--k", "3", "--index", "art"]).unwrap();
        run(&[
            "knn",
            &csv,
            "--queries",
            "4",
            "--batch",
            "4",
            "--index",
            "art",
        ])
        .unwrap();
        run(&["explain", &csv, "--queries", "2", "--index", "art"]).unwrap();
        // The indexed engine the CLI builds answers exactly like the
        // plain one.
        let ds = load(&csv).unwrap().normalize();
        let eps = pick_eps(&Parsed::default(), &ds).unwrap();
        let plain = build_engine(&ds, eps, "combined", 100, false).unwrap();
        let indexed = build_engine(&ds, eps, "combined", 100, true).unwrap();
        for id in 0..3 {
            let q = ds.get(id).unwrap();
            assert_eq!(
                (indexed.query)(q, 4).distances(),
                (plain.query)(q, 4).distances(),
                "query {id}"
            );
        }
        // Only the combined engine has a candidate-generation stage the
        // index can replace; unknown index names are rejected.
        let err = run(&[
            "knn", &csv, "--query", "0", "--engine", "scan", "--index", "art",
        ])
        .unwrap_err();
        assert!(err.contains("combined"), "unexpected error: {err}");
        let err = run(&["knn", &csv, "--query", "0", "--index", "hash"]).unwrap_err();
        assert!(err.contains("--index"), "unexpected error: {err}");
    }

    #[test]
    fn spread_walks_scatter_start_points() {
        let csv = tmp("spread.csv");
        run(&[
            "generate", "walk", "--n", "40", "--seed", "3", "--spread", "100", "-o", &csv,
        ])
        .unwrap();
        let ds = load(&csv).unwrap();
        let xs: Vec<f64> = ds.trajectories().iter().map(|t| t[0].x()).collect();
        let (lo, hi) = xs
            .iter()
            .fold((f64::MAX, f64::MIN), |(l, h), &x| (l.min(x), h.max(x)));
        assert!(hi - lo > 30.0, "start spread only {}", hi - lo);
        assert!(run(&["generate", "walk", "--n", "2", "--spread", "-5", "-o", &csv]).is_err());
    }

    #[test]
    fn metrics_out_emits_parsable_stage_json() {
        let _g = sink_guard();
        let csv = tmp("metrics.csv");
        let out = tmp("metrics.json");
        run(&["generate", "walk", "--n", "25", "--seed", "9", "-o", &csv]).unwrap();
        run(&[
            "knn",
            &csv,
            "--query",
            "1",
            "--k",
            "3",
            "--engine",
            "combined",
            "--metrics-out",
            &out,
        ])
        .unwrap();
        let text = std::fs::read_to_string(&out).unwrap();
        let doc = serde_json::from_str(&text).expect("metrics file is valid JSON");
        assert_eq!(doc.get("engine").and_then(|v| v.as_str()), Some("combined"));
        let threads = doc.get("threads").expect("threads key");
        assert!(threads.get("count").and_then(|v| v.as_u64()).unwrap() >= 1);
        assert!(threads.get("source").and_then(|v| v.as_str()).is_some());
        let stages = doc
            .get("stats")
            .and_then(|s| s.get("stages"))
            .expect("stats.stages key");
        for key in [
            "setup_ns",
            "histogram",
            "qgram",
            "triangle",
            "refine_ns",
            "total_ns",
        ] {
            assert!(stages.get(key).is_some(), "missing stage key {key}");
        }
        assert!(
            stages.get("total_ns").and_then(|v| v.as_u64()).unwrap() > 0,
            "total stage time should be positive"
        );
        // The global registry snapshot carries the knn counters.
        let metrics = doc.get("metrics").expect("metrics key");
        let counters = metrics.get("counters").expect("counters section");
        assert!(
            counters
                .get("knn.queries")
                .and_then(|v| v.as_u64())
                .unwrap()
                >= 1
        );
    }

    #[test]
    fn trace_flag_accepts_bare_and_leveled_forms() {
        let _g = sink_guard();
        let csv = tmp("trace.csv");
        run(&["generate", "walk", "--n", "10", "--seed", "2", "-o", &csv]).unwrap();
        run(&["knn", &csv, "--query", "0", "--k", "2", "--trace"]).unwrap();
        run(&["knn", &csv, "--query", "0", "--k", "2", "--trace", "info"]).unwrap();
        assert!(run(&["knn", &csv, "--query", "0", "--trace", "blorp"]).is_err());
        // Quiet the process-global tracing again for other tests.
        trajsim_obs::set_level(trajsim_obs::Level::Off);
        trajsim_obs::set_sink(None);
    }

    #[test]
    fn explain_report_matches_the_engine_stats_exactly() {
        let _g = sink_guard();
        let csv = tmp("explain.csv");
        let json = tmp("explain.json");
        run(&["generate", "walk", "--n", "40", "--seed", "11", "-o", &csv]).unwrap();
        run(&[
            "explain",
            &csv,
            "--queries",
            "3",
            "--k",
            "3",
            "--engine",
            "combined",
            "--json",
            &json,
        ])
        .unwrap();
        // Re-run the identical workload directly through the engine and
        // check the written report against the live stats: the counter
        // fields are deterministic and must match exactly.
        let ds = load(&csv).unwrap().normalize();
        let eps = pick_eps(&Parsed::default(), &ds).unwrap();
        let engine = build_engine(&ds, eps, "combined", 100, false).unwrap();
        let mut expected = QueryStats::default();
        for id in 0..3 {
            expected.accumulate(&(engine.query)(ds.get(id).unwrap(), 3).stats);
        }
        let doc: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&json).unwrap()).unwrap();
        assert_eq!(doc.get("engine").and_then(|v| v.as_str()), Some("combined"));
        assert_eq!(doc.get("queries").and_then(|v| v.as_u64()), Some(3));
        for (key, want) in [
            ("database_size", expected.database_size as u64),
            ("edr_computed", expected.edr_computed as u64),
            ("pruned", expected.pruned() as u64),
            ("dp_cells", expected.dp_cells),
        ] {
            assert_eq!(doc.get(key).and_then(|v| v.as_u64()), Some(want), "{key}");
        }
        assert_eq!(
            doc.get("pruning_power").and_then(|v| v.as_f64()),
            Some(expected.pruning_power())
        );
        // Per-stage candidate flow and selectivity, stage by stage.
        let stages = doc.get("stages").unwrap().as_array().unwrap();
        let want_stages = [
            ("histogram", &expected.timings.histogram),
            ("qgram", &expected.timings.qgram),
            ("triangle", &expected.timings.triangle),
        ];
        for got in stages {
            let name = got.get("name").and_then(|v| v.as_str()).unwrap();
            let (_, want) = want_stages
                .iter()
                .find(|(n, _)| *n == name)
                .unwrap_or_else(|| panic!("unexpected stage {name}"));
            assert_eq!(
                got.get("candidates_in").and_then(|v| v.as_u64()),
                Some(want.candidates_in as u64),
                "{name} candidates_in"
            );
            assert_eq!(
                got.get("candidates_out").and_then(|v| v.as_u64()),
                Some(want.candidates_out as u64),
                "{name} candidates_out"
            );
            assert_eq!(
                got.get("pruned").and_then(|v| v.as_u64()),
                Some(want.pruned() as u64),
                "{name} pruned"
            );
            let want_sel = if want.candidates_in == 0 {
                0.0
            } else {
                want.candidates_out as f64 / want.candidates_in as f64
            };
            assert_eq!(
                got.get("selectivity").and_then(|v| v.as_f64()),
                Some(want_sel),
                "{name} selectivity"
            );
        }
    }

    #[test]
    fn explain_runs_every_engine_and_validates_its_arguments() {
        let _g = sink_guard();
        let csv = tmp("explain-engines.csv");
        run(&["generate", "walk", "--n", "20", "--seed", "4", "-o", &csv]).unwrap();
        for engine in ["scan", "qgram", "histogram", "triangle", "combined"] {
            run(&[
                "explain", &csv, "--query", "0", "--k", "2", "--engine", engine,
            ])
            .unwrap();
        }
        // Exactly one of --query / --queries; ranges validated.
        assert!(run(&["explain", &csv]).unwrap_err().contains("exactly one"));
        assert!(run(&["explain", &csv, "--query", "0", "--queries", "2"]).is_err());
        assert!(run(&["explain", &csv, "--queries", "0"]).is_err());
        assert!(run(&["explain", &csv, "--queries", "999"]).is_err());
        assert!(run(&["explain", &csv, "--query", "999"]).is_err());
    }

    #[test]
    fn profile_out_emits_schema_valid_chrome_trace() {
        let _g = sink_guard();
        let csv = tmp("profile.csv");
        let out = tmp("profile.json");
        run(&["generate", "walk", "--n", "25", "--seed", "8", "-o", &csv]).unwrap();
        run(&[
            "knn",
            &csv,
            "--query",
            "0",
            "--k",
            "3",
            "--profile-out",
            &out,
        ])
        .unwrap();
        let doc: serde_json::Value = serde_json::from_str(&std::fs::read_to_string(&out).unwrap())
            .expect("profile file is valid JSON");
        assert_eq!(
            doc.get("displayTimeUnit").and_then(|v| v.as_str()),
            Some("ms")
        );
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert!(!events.is_empty());
        let mut saw_query_slice = false;
        for e in events {
            let ph = e.get("ph").and_then(|v| v.as_str()).expect("ph");
            assert!(["M", "X", "i"].contains(&ph), "unknown phase {ph:?}");
            assert!(e.get("name").and_then(|v| v.as_str()).is_some());
            assert!(e.get("pid").and_then(|v| v.as_u64()).is_some());
            assert!(e.get("tid").and_then(|v| v.as_u64()).is_some());
            if ph != "M" {
                assert!(e.get("ts").and_then(|v| v.as_f64()).is_some());
            }
            if ph == "X" {
                assert!(e.get("dur").and_then(|v| v.as_f64()).is_some());
                if e.get("name").and_then(|v| v.as_str()) == Some("knn.query") {
                    saw_query_slice = true;
                    let args = e.get("args").expect("args");
                    assert!(args.get("engine").and_then(|v| v.as_str()).is_some());
                    assert!(args.get("pruned").and_then(|v| v.as_u64()).is_some());
                }
            }
        }
        assert!(saw_query_slice, "no knn.query slice in {out}");
        // The profile run restored tracing; a plain knn emits nothing.
        assert_eq!(trajsim_obs::level(), trajsim_obs::Level::Off);
    }

    #[test]
    fn profile_out_collapsed_format_folds_the_query_stack() {
        let _g = sink_guard();
        let csv = tmp("profile-collapsed.csv");
        let out = tmp("profile.folded");
        run(&["generate", "walk", "--n", "20", "--seed", "6", "-o", &csv]).unwrap();
        run(&[
            "knn",
            &csv,
            "--query",
            "0",
            "--k",
            "3",
            "--profile-out",
            &out,
            "--profile-format",
            "collapsed",
        ])
        .unwrap();
        let text = std::fs::read_to_string(&out).unwrap();
        let query_line = text
            .lines()
            .find(|l| l.contains(";knn.query") && !l.contains("knn.stage"))
            .expect("a knn.query stack line");
        assert!(query_line.starts_with("thread-"));
        let value: u64 = query_line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!(value >= 1);
        // Bad format is rejected up front.
        assert!(run(&[
            "knn",
            &csv,
            "--query",
            "0",
            "--profile-out",
            &out,
            "--profile-format",
            "svg",
        ])
        .unwrap_err()
        .contains("profile-format"));
    }

    #[test]
    fn unwritable_output_paths_fail_cleanly() {
        let csv = tmp("unwritable.csv");
        run(&["generate", "walk", "--n", "10", "--seed", "1", "-o", &csv]).unwrap();
        // Every output flag goes through the shared up-front check, so
        // the error names the flag and arrives before the workload runs.
        let bad = tmp("no-such-dir/out.json");
        let err = run(&["knn", &csv, "--query", "0", "--profile-out", &bad]).unwrap_err();
        assert!(err.contains("--profile-out"), "unexpected error: {err}");
        let err = run(&["knn", &csv, "--query", "0", "--metrics-out", &bad]).unwrap_err();
        assert!(err.contains("--metrics-out"), "unexpected error: {err}");
        let err = run(&["knn", &csv, "--query", "0", "--record", &bad]).unwrap_err();
        assert!(err.contains("--record"), "unexpected error: {err}");
        let err = run(&["explain", &csv, "--query", "0", "--json", &bad]).unwrap_err();
        assert!(err.contains("--json"), "unexpected error: {err}");
        let err = run(&["stats", "merge", &csv, "-o", &bad]).unwrap_err();
        assert!(err.contains(&bad), "unexpected error: {err}");
    }

    #[test]
    fn knn_batched_workload_validates_and_runs() {
        let _g = sink_guard();
        let csv = tmp("batch.csv");
        run(&["generate", "walk", "--n", "32", "--seed", "13", "-o", &csv]).unwrap();
        // --batch belongs to multi-query workloads, bounded by their size.
        let err = run(&["knn", &csv, "--query", "0", "--batch", "4"]).unwrap_err();
        assert!(err.contains("--queries"), "unexpected error: {err}");
        let err = run(&["knn", &csv, "--queries", "8", "--batch", "0"]).unwrap_err();
        assert!(err.contains("at least 1"), "unexpected error: {err}");
        let err = run(&["knn", &csv, "--queries", "8", "--batch", "9"]).unwrap_err();
        assert!(err.contains("exceeds"), "unexpected error: {err}");
        assert!(run(&["knn", &csv]).unwrap_err().contains("exactly one"));
        assert!(run(&["knn", &csv, "--queries", "0"]).is_err());
        assert!(run(&["explain", &csv, "--query", "0", "--batch", "2"]).is_err());
        // Batched and per-query multi-runs both execute, on the batch-aware
        // engines and on one that falls back to per-query delegation.
        for engine in ["scan", "combined", "qgram"] {
            run(&[
                "knn",
                &csv,
                "--queries",
                "8",
                "--batch",
                "4",
                "--k",
                "3",
                "--engine",
                engine,
            ])
            .unwrap();
        }
        run(&["knn", &csv, "--queries", "8", "--k", "3"]).unwrap();
        run(&[
            "explain",
            &csv,
            "--queries",
            "8",
            "--batch",
            "8",
            "--k",
            "3",
        ])
        .unwrap();
    }

    #[test]
    fn batched_metrics_out_reports_batch_series() {
        // Serialized with the other batch test: the `batch.size` gauge is
        // process-global and records the most recent batch.
        let _g = sink_guard();
        let csv = tmp("batch-metrics.csv");
        let out = tmp("batch-metrics.json");
        run(&["generate", "walk", "--n", "40", "--seed", "21", "-o", &csv]).unwrap();
        run(&[
            "knn",
            &csv,
            "--queries",
            "16",
            "--batch",
            "16",
            "--k",
            "3",
            "--metrics-out",
            &out,
        ])
        .unwrap();
        let doc: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&out).unwrap()).unwrap();
        let path = |keys: &[&str]| -> serde_json::Value {
            let mut v = &doc;
            for k in keys {
                v = v.get(k).unwrap_or_else(|| panic!("missing key {k:?}"));
            }
            v.clone()
        };
        assert_eq!(doc.get("batch").and_then(|v| v.as_u64()), Some(16));
        assert_eq!(path(&["query", "count"]).as_u64(), Some(16));
        assert!(path(&["stats", "edr_computed"]).as_u64().unwrap() > 0);
        assert_eq!(
            path(&["metrics", "gauges", "batch.size"]).as_i64(),
            Some(16)
        );
        assert!(
            path(&["metrics", "counters", "batch.shared_signature_evals"])
                .as_u64()
                .is_some_and(|v| v > 0)
        );
        assert!(path(&["metrics", "counters", "batch.runs"])
            .as_u64()
            .is_some());
        assert!(path(&["metrics", "counters", "parallel.worker_busy_ns"])
            .as_u64()
            .is_some());
        assert!(path(&["metrics", "counters", "parallel.worker_idle_ns"])
            .as_u64()
            .is_some());
    }

    #[test]
    fn cluster_runs_and_validates_k() {
        let csv = tmp("cluster.csv");
        run(&["generate", "walk", "--n", "12", "--seed", "5", "-o", &csv]).unwrap();
        run(&["cluster", &csv, "--k", "3", "--tree", "yes"]).unwrap();
        assert!(run(&["cluster", &csv, "--k", "0"]).is_err());
        assert!(run(&["cluster", &csv, "--k", "99"]).is_err());
    }

    #[test]
    fn generate_validates_kind_and_output() {
        assert!(run(&["generate", "martian", "-o", &tmp("x.csv")]).is_err());
        assert!(run(&["generate", "walk"]).unwrap_err().contains("--o"));
    }

    #[test]
    fn record_flag_writes_a_parseable_recording_with_header() {
        let _g = sink_guard();
        let csv = tmp("record.csv");
        let rec = tmp("record.flight.jsonl");
        run(&["generate", "walk", "--n", "30", "--seed", "17", "-o", &csv]).unwrap();
        run(&[
            "knn",
            &csv,
            "--queries",
            "6",
            "--k",
            "3",
            "--engine",
            "combined",
            "--record",
            &rec,
        ])
        .unwrap();
        let recording = Recording::read(&rec).unwrap();
        assert_eq!(recording.records.len(), 6);
        let meta = &recording.meta;
        assert_eq!(
            meta.get("command").and_then(serde_json::Value::as_str),
            Some("knn")
        );
        assert_eq!(
            meta.get("engine").and_then(serde_json::Value::as_str),
            Some("combined")
        );
        assert_eq!(meta.get("k").and_then(serde_json::Value::as_u64), Some(3));
        assert_eq!(
            meta.get("data").and_then(serde_json::Value::as_str),
            Some(csv.as_str())
        );
        for r in &recording.records {
            assert_eq!(r.database_size, 30);
            assert_eq!(r.k, 3);
            assert_eq!(r.neighbors.len(), 3);
            assert!(r.total_ns > 0);
            assert!(r.batch.is_none());
        }
        // The recording run restored tracing for subsequent commands.
        assert_eq!(trajsim_obs::level(), trajsim_obs::Level::Off);
        // range records too, with the hit count in the k field.
        let rec2 = tmp("record-range.flight.jsonl");
        run(&[
            "range", &csv, "--query", "0", "--edits", "3", "--record", &rec2,
        ])
        .unwrap();
        let recording = Recording::read(&rec2).unwrap();
        assert_eq!(recording.records.len(), 1);
        assert_eq!(recording.records[0].engine, "range");
        assert_eq!(
            recording.records[0].k,
            recording.records[0].neighbors.len() as u64
        );
    }

    #[test]
    fn stats_subcommands_show_merge_and_diff_recordings() {
        let _g = sink_guard();
        let csv = tmp("stats-flow.csv");
        let rec_a = tmp("stats-a.flight.jsonl");
        let rec_b = tmp("stats-b.flight.jsonl");
        let store = tmp("stats-merged.json");
        run(&["generate", "walk", "--n", "24", "--seed", "19", "-o", &csv]).unwrap();
        for rec in [&rec_a, &rec_b] {
            run(&["knn", &csv, "--queries", "5", "--k", "2", "--record", rec]).unwrap();
        }
        run(&["stats", "show", &rec_a]).unwrap();
        run(&["stats", "merge", &rec_a, &rec_b, "-o", &store]).unwrap();
        let merged = read_stats_input(&store).unwrap();
        assert_eq!(merged.runs, 2);
        assert_eq!(merged.queries, 10);
        // A store is a valid input again: show it, merge it with a recording.
        run(&["stats", "show", &store]).unwrap();
        // Two recordings of the same workload: no significant drift, even
        // under --check (latency gets a generous tolerance; the workload
        // shape must match exactly).
        run(&[
            "stats",
            "diff",
            &rec_a,
            &rec_b,
            "--latency-tolerance",
            "1",
            "--check",
        ])
        .unwrap();
        // Validation: missing inputs and bad tolerance fail cleanly.
        assert!(run(&["stats", "show"]).is_err());
        assert!(run(&["stats", "diff", &rec_a]).is_err());
        assert!(run(&["stats", "merge", "-o", &store]).is_err());
        assert!(run(&["stats", "diff", &rec_a, &rec_b, "--latency-tolerance", "7"]).is_err());
    }

    #[test]
    fn timeline_path_derives_a_sidecar_name() {
        assert_eq!(timeline_path("m.json"), "m.timeline.json");
        assert_eq!(timeline_path("out/metrics"), "out/metrics.timeline.json");
    }

    #[test]
    fn metrics_out_writes_a_timeline_sidecar() {
        let _g = sink_guard();
        let csv = tmp("timeline.csv");
        let out = tmp("timeline-metrics.json");
        run(&["generate", "walk", "--n", "30", "--seed", "29", "-o", &csv]).unwrap();
        run(&[
            "knn",
            &csv,
            "--queries",
            "16",
            "--k",
            "2",
            "--metrics-out",
            &out,
            "--timeline-every",
            "4",
        ])
        .unwrap();
        let side = timeline_path(&out);
        let doc: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&side).unwrap()).unwrap();
        assert_eq!(
            doc.get("format").and_then(|v| v.as_str()),
            Some(trajsim_obs::TIMELINE_FORMAT)
        );
        assert_eq!(
            doc.get("version").and_then(|v| v.as_u64()),
            Some(trajsim_obs::TIMELINE_VERSION)
        );
        assert!(doc.get("queries").and_then(|v| v.as_u64()).unwrap() >= 16);
        let intervals = doc.get("intervals").unwrap().as_array().unwrap();
        assert!(!intervals.is_empty(), "no intervals captured");
        // Interval counter deltas include the per-interval query count.
        let total_noted: u64 = intervals
            .iter()
            .map(|i| i.get("queries").and_then(|v| v.as_u64()).unwrap())
            .sum();
        assert!(total_noted >= 16, "intervals cover {total_noted} queries");
        assert!(run(&[
            "knn",
            &csv,
            "--query",
            "0",
            "--metrics-out",
            &out,
            "--timeline-every",
            "0"
        ])
        .is_err());
        // The timeline was uninstalled when the command finished.
        assert_eq!(trajsim_obs::level(), trajsim_obs::Level::Off);
    }

    #[test]
    fn sampled_recording_reweights_and_ranks_slow_queries() {
        let _g = sink_guard();
        let csv = tmp("sampled.csv");
        let rec = tmp("sampled.flight.jsonl");
        run(&["generate", "walk", "--n", "40", "--seed", "31", "-o", &csv]).unwrap();
        run(&[
            "knn",
            &csv,
            "--queries",
            "24",
            "--k",
            "2",
            "--record",
            &rec,
            "--sample",
            "4",
        ])
        .unwrap();
        let recording = Recording::read(&rec).unwrap();
        // 24 queries all fall inside the warmup window, so the uniform
        // path keeps exactly the first of each run of 4.
        assert_eq!(recording.records.len(), 6);
        for r in &recording.records {
            assert_eq!(r.weight, 4);
            assert_eq!(r.sampled.as_deref(), Some("uniform"));
        }
        let sampling = recording.meta.get("sampling").expect("meta.sampling");
        assert_eq!(
            sampling.get("every").and_then(serde_json::Value::as_u64),
            Some(4)
        );
        // The aggregate reweights back to the population query count.
        let stats = read_stats_input(&rec).unwrap();
        assert_eq!(stats.queries, 24);
        assert_eq!(stats.recorded_queries, 6);
        // Forensics commands read the sampled recording.
        run(&["stats", "show", &rec]).unwrap();
        run(&["slow", &rec, "--top", "3"]).unwrap();
        // Validation: --sample needs --record and a positive stride.
        assert!(run(&["knn", &csv, "--query", "0", "--sample", "4"])
            .unwrap_err()
            .contains("--record"));
        assert!(run(&["knn", &csv, "--query", "0", "--record", &rec, "--sample", "0"]).is_err());
        assert!(run(&["slow"]).is_err());
        assert!(run(&["slow", &rec, "--top", "0"]).is_err());
    }

    #[test]
    fn stats_diff_supports_shape_tolerance_and_attribution() {
        let _g = sink_guard();
        let csv = tmp("attrib.csv");
        let full = tmp("attrib-full.flight.jsonl");
        let sampled = tmp("attrib-sampled.flight.jsonl");
        run(&["generate", "walk", "--n", "32", "--seed", "37", "-o", &csv]).unwrap();
        run(&[
            "knn",
            &csv,
            "--queries",
            "16",
            "--k",
            "2",
            "--record",
            &full,
        ])
        .unwrap();
        // --sample 1 keeps every query (weight 1): the reweighted shape
        // is identical to the full recording, so even exact diff passes.
        run(&[
            "knn",
            &csv,
            "--queries",
            "16",
            "--k",
            "2",
            "--record",
            &sampled,
            "--sample",
            "1",
        ])
        .unwrap();
        run(&[
            "stats",
            "diff",
            &full,
            &sampled,
            "--latency-tolerance",
            "1",
            "--shape-tolerance",
            "0.05",
            "--attribute",
            "--check",
        ])
        .unwrap();
        assert!(run(&["stats", "diff", &full, &sampled, "--shape-tolerance", "7"]).is_err());
    }

    #[test]
    fn replay_reproduces_the_recorded_neighbor_sets() {
        let _g = sink_guard();
        let csv = tmp("replay.csv");
        let rec = tmp("replay.flight.jsonl");
        run(&["generate", "walk", "--n", "64", "--seed", "23", "-o", &csv]).unwrap();
        run(&[
            "knn",
            &csv,
            "--queries",
            "64",
            "--k",
            "3",
            "--engine",
            "combined",
            "--record",
            &rec,
        ])
        .unwrap();
        assert_eq!(Recording::read(&rec).unwrap().records.len(), 64);
        // The replay re-runs the workload from the header and must get
        // identical answers (hard failure otherwise).
        run(&["replay", &rec]).unwrap();
        // Tampering with the recorded distances makes replay fail loudly.
        let text = std::fs::read_to_string(&rec).unwrap();
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        let v: serde_json::Value = serde_json::from_str(&lines[1]).unwrap();
        let old_nb = v
            .get("neighbors")
            .and_then(serde_json::Value::as_str)
            .unwrap()
            .to_string();
        let new_nb = old_nb
            .split_whitespace()
            .map(|p| {
                let (id, d) = p.split_once(':').unwrap();
                format!("{id}:{}", d.parse::<u64>().unwrap() + 1)
            })
            .collect::<Vec<_>>()
            .join(" ");
        lines[1] = lines[1].replace(&old_nb, &new_nb);
        let bad = tmp("replay-tampered.flight.jsonl");
        std::fs::write(&bad, lines.join("\n")).unwrap();
        let err = run(&["replay", &bad]).unwrap_err();
        assert!(err.contains("neighbor"), "unexpected error: {err}");
        // A recording without a header cannot be replayed.
        let empty = tmp("replay-headerless.flight.jsonl");
        std::fs::write(
            &empty,
            "{\"format\":\"trajsim-flight-recording\",\"version\":1,\"meta\":{}}\n",
        )
        .unwrap();
        assert!(run(&["replay", &empty]).unwrap_err().contains("meta"));
    }

    #[test]
    fn replay_handles_batched_recordings() {
        let _g = sink_guard();
        let csv = tmp("replay-batch.csv");
        let rec = tmp("replay-batch.flight.jsonl");
        run(&["generate", "walk", "--n", "32", "--seed", "29", "-o", &csv]).unwrap();
        run(&[
            "knn",
            &csv,
            "--queries",
            "8",
            "--batch",
            "4",
            "--k",
            "3",
            "--record",
            &rec,
        ])
        .unwrap();
        let recording = Recording::read(&rec).unwrap();
        assert_eq!(recording.records.len(), 8);
        assert!(recording.records.iter().all(|r| r.batch.is_some()));
        run(&["replay", &rec]).unwrap();
    }

    #[test]
    fn replay_rebuilds_the_indexed_engine_from_the_header() {
        let _g = sink_guard();
        let csv = tmp("replay-index.csv");
        let rec = tmp("replay-index.flight.jsonl");
        run(&[
            "generate", "walk", "--n", "24", "--seed", "47", "--spread", "150", "-o", &csv,
        ])
        .unwrap();
        run(&[
            "knn",
            &csv,
            "--queries",
            "6",
            "--k",
            "3",
            "--index",
            "art",
            "--record",
            &rec,
        ])
        .unwrap();
        let recording = Recording::read(&rec).unwrap();
        assert_eq!(
            recording
                .meta
                .get("index")
                .and_then(serde_json::Value::as_str),
            Some("art"),
            "recording header must carry the index choice"
        );
        // Replay rebuilds the indexed engine and reproduces the answers.
        run(&["replay", &rec]).unwrap();
    }

    #[test]
    fn metrics_out_carries_latency_percentiles() {
        let _g = sink_guard();
        let csv = tmp("pctl.csv");
        let out = tmp("pctl.json");
        run(&["generate", "walk", "--n", "20", "--seed", "31", "-o", &csv]).unwrap();
        run(&[
            "knn",
            &csv,
            "--queries",
            "4",
            "--k",
            "2",
            "--metrics-out",
            &out,
        ])
        .unwrap();
        let doc: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&out).unwrap()).unwrap();
        let h = doc
            .get("metrics")
            .and_then(|m| m.get("histograms"))
            .and_then(|h| h.get("knn.query_ns"))
            .expect("knn.query_ns histogram in the snapshot");
        for q in ["p50", "p95", "p99"] {
            let v = h.get(q).and_then(serde_json::Value::as_f64);
            assert!(v.is_some_and(|v| v > 0.0), "missing or zero {q}: {h:?}");
        }
    }

    #[test]
    fn every_dispatch_command_has_usage_text_and_is_recognized() {
        // The drift guard: a dispatch arm without help text (or a USAGE
        // entry without an arm) fails here, not in a user's terminal.
        for cmd in COMMANDS {
            assert!(
                USAGE.contains(&format!("\n  {cmd} ")),
                "command {cmd:?} missing from USAGE"
            );
            // Recognized: running it bare may fail on missing args, but
            // never as an unknown command.
            if let Err(e) = run(&[cmd]) {
                assert!(
                    !e.contains("unknown command"),
                    "dispatch does not recognize {cmd:?}: {e}"
                );
            }
        }
        // And the converse: the unknown-command arm still fires.
        assert!(run(&["definitely-not-a-command"])
            .unwrap_err()
            .contains("unknown command"));
    }

    #[test]
    fn serve_metrics_endpoint_serves_live_registry_and_shuts_down() {
        let _g = sink_guard();
        // Drive Telemetry directly so the ephemeral port is reachable
        // (dispatch only prints it).
        let args: Vec<String> = ["x", "--serve-metrics", "127.0.0.1:0"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let parsed = Parsed::parse(&args).unwrap();
        let telemetry = Telemetry::from_args(&parsed).unwrap();
        let (server, _) = telemetry.serve.as_ref().expect("server started");
        let addr = server.addr().to_string();
        let t = std::time::Duration::from_secs(5);
        let (status, body) = trajsim_obs::http_get(&addr, "/metrics", t).unwrap();
        assert_eq!(status, 200);
        trajsim_obs::exposition::parse(&body).expect("valid exposition");
        let (status, body) = trajsim_obs::http_get(&addr, "/healthz", t).unwrap();
        assert_eq!(status, 200);
        let doc: serde_json::Value = serde_json::from_str(body.trim()).unwrap();
        assert_eq!(doc.get("status").and_then(|v| v.as_str()), Some("ok"));
        telemetry.finish().unwrap();
        assert!(
            trajsim_obs::http_get(&addr, "/metrics", std::time::Duration::from_millis(300))
                .is_err(),
            "endpoint still up after finish()"
        );
        // Validation: unbindable address and orphaned --serve-hold.
        assert!(run(&["stats", "--serve-metrics", "999.999.999.999:1"]).is_err());
        assert!(run(&["stats", "--serve-hold", "1"])
            .unwrap_err()
            .contains("requires --serve-metrics"));
    }

    #[test]
    fn knn_runs_with_a_live_endpoint() {
        let _g = sink_guard();
        let csv = tmp("serve.csv");
        run(&["generate", "walk", "--n", "20", "--seed", "41", "-o", &csv]).unwrap();
        run(&[
            "knn",
            &csv,
            "--queries",
            "3",
            "--k",
            "2",
            "--serve-metrics",
            "127.0.0.1:0",
        ])
        .unwrap();
    }

    fn write_slo_spec(name: &str, p99_max_ns: u64) -> String {
        let path = tmp(name);
        std::fs::write(
            &path,
            format!(
                r#"{{"format": "trajsim-slo-spec", "version": 1,
  "objectives": [{{"metric": "total_ns", "p": 0.99, "max_ns": {p99_max_ns}}}],
  "burn": {{"threshold_ns": {p99_max_ns}, "budget": 0.05,
            "window_intervals": 4, "max_rate": 1.0}}}}"#
            ),
        )
        .unwrap();
        path
    }

    #[test]
    fn slo_check_gates_recordings_and_timelines() {
        let _g = sink_guard();
        let csv = tmp("slo.csv");
        let rec = tmp("slo.flight.jsonl");
        let metrics = tmp("slo-metrics.json");
        run(&["generate", "walk", "--n", "24", "--seed", "37", "-o", &csv]).unwrap();
        // Reset the global registry so the timeline in this run reflects
        // only this run's queries.
        trajsim_obs::metrics::global().clear();
        run(&[
            "knn",
            &csv,
            "--queries",
            "6",
            "--k",
            "2",
            "--record",
            &rec,
            "--metrics-out",
            &metrics,
            "--timeline-every",
            "2",
        ])
        .unwrap();
        // A generous objective (1000 s) passes; an absurd one (1 ns,
        // every query is over threshold) fails with a rendered verdict.
        let pass_spec = write_slo_spec("slo-pass.json", 1_000_000_000_000);
        let fail_spec = write_slo_spec("slo-fail.json", 1);
        run(&["slo", "check", &pass_spec, &rec]).unwrap();
        let err = run(&["slo", "check", &fail_spec, &rec]).unwrap_err();
        assert!(err.contains("violates"), "{err}");
        // The timeline sidecar is detected by format and gated too.
        let timeline = timeline_path(&metrics);
        run(&["slo", "check", &pass_spec, &timeline]).unwrap();
        assert!(run(&["slo", "check", &fail_spec, &timeline])
            .unwrap_err()
            .contains("violates"));
        // Bad inputs fail cleanly.
        assert!(run(&["slo", "check", &pass_spec]).is_err());
        assert!(run(&["slo", "check", "/nonexistent.json", &rec]).is_err());
        assert!(
            run(&["slo", "check", &csv, &rec]).is_err(),
            "spec must be JSON"
        );
        assert!(run(&["slo", "frobnicate"]).is_err());
    }

    #[test]
    fn watch_prints_interval_rollups_from_a_live_endpoint() {
        let _g = sink_guard();
        let server = trajsim_obs::serve("127.0.0.1:0", trajsim_obs::metrics::global()).unwrap();
        let addr = server.addr().to_string();
        // One rollup with a tiny interval: exercises scrape + diff + print.
        run(&["watch", &addr, "--every", "0.05", "--count", "1"]).unwrap();
        server.shutdown();
        assert!(run(&["watch", &addr, "--every", "0.05", "--count", "1"]).is_err());
        assert!(run(&["watch"]).is_err());
        assert!(run(&["watch", &addr, "--every", "0"]).is_err());
    }

    #[test]
    fn watch_line_reports_qps_p99_and_dominant_stage() {
        // Pure interval arithmetic against hand-built scrapes.
        let mk = |queries: u64, hist_ns: u64, bucket: &[u64]| {
            let r = trajsim_obs::Registry::new();
            r.counter("knn.queries").add(queries);
            r.counter("knn.stage.histogram_ns").add(hist_ns);
            r.counter("knn.stage.refine_ns").add(hist_ns / 4);
            let h = r.histogram_with_bounds("knn.query_ns", vec![1_000, 1_000_000]);
            for (i, &c) in bucket.iter().enumerate() {
                let v = match i {
                    0 => 500,
                    1 => 500_000,
                    _ => 2_000_000,
                };
                for _ in 0..c {
                    h.record(v);
                }
            }
            trajsim_obs::exposition::parse(&trajsim_obs::exposition::render(&r)).unwrap()
        };
        let prev = mk(100, 1_000, &[10, 0, 0]);
        let cur = mk(300, 9_000, &[10, 200, 0]);
        let line = watch_line(&prev, &cur, 2.0);
        // 200 queries over 2 s.
        assert!(line.contains("100.0 q/s"), "{line}");
        assert!(line.contains("dominant histogram"), "{line}");
        assert!(line.contains("[300 queries total]"), "{line}");
        // All interval mass in the (1 µs, 1 ms] bucket → p99 ≤ 1 ms.
        assert!(line.contains("p99"), "{line}");
        let idle = watch_line(&cur, &cur, 2.0);
        assert!(idle.contains("idle"), "{idle}");
    }
}
