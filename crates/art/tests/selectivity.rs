//! Probe selectivity: trajectories whose signatures live in disjoint
//! regions of the ε-grid must stay untouched by each other's probes.
//!
//! This is the property that makes the index *sublinear* rather than
//! merely correct — on spatially clustered data a probe's work tracks
//! the query's neighbourhood, not the dataset. (On normalized data,
//! where every trajectory is recentred to mean 0, selectivity comes
//! from the count bounds instead; see the combined-engine tests.)

use trajsim_art::{ArtScratch, HistogramArtIndex, QgramArtIndex, QuerySignature};
use trajsim_core::{MatchThreshold, Point2, Trajectory2};
use trajsim_data::{random_walk_set_spread, seeded_rng, LengthDistribution};
use trajsim_histogram::TrajectoryHistogram;
use trajsim_qgram::SortedMeans;

fn per_dim_hists(ts: &[&Trajectory2], eps: MatchThreshold) -> Vec<Vec<TrajectoryHistogram<1>>> {
    ts.iter()
        .map(|t| {
            (0..2)
                .map(|d| TrajectoryHistogram::<2>::build_projected(t, eps, d))
                .collect()
        })
        .collect()
}

#[test]
fn far_apart_trajectories_do_not_touch_each_other() {
    let eps = MatchThreshold::new(0.25).unwrap();
    let near = Trajectory2::new((0..20).map(|i| Point2::xy(i as f64 * 0.1, 0.0)).collect());
    let far = Trajectory2::new(
        (0..20)
            .map(|i| Point2::xy(500.0 + i as f64 * 0.1, 300.0))
            .collect(),
    );
    let hists = per_dim_hists(&[&near, &far], eps);
    let index = HistogramArtIndex::<2>::build_per_dim(&hists);
    let mut scratch = ArtScratch::new();
    let mut out = Vec::new();
    index.probe(
        QuerySignature::PerDim(&hists[0]),
        20,
        &mut scratch,
        &mut out,
    );
    assert_eq!(out.len(), 1, "far trajectory must stay untouched: {out:?}");
    assert_eq!(out[0].id, 0);

    let means: Vec<SortedMeans<2>> = [&near, &far]
        .iter()
        .map(|t| SortedMeans::build(t, 2))
        .collect();
    let qindex = QgramArtIndex::<2>::build(&means, eps);
    let mut counts = Vec::new();
    qindex.probe(&means[0], &mut scratch, &mut counts);
    assert!(
        counts.iter().all(|&(id, _)| id == 0),
        "far trajectory must share no quantized q-gram: {counts:?}"
    );
}

#[test]
fn scattered_walks_probe_only_their_own_neighbourhood() {
    // 200 unit-step walks scattered over a 2000 x 2000 square: each walk
    // spans ~±16 units, so almost no pair overlaps and a probe for one
    // walk must touch a small fraction of the dataset.
    let eps = MatchThreshold::new(0.25).unwrap();
    let ds = random_walk_set_spread(
        &mut seeded_rng(13),
        200,
        LengthDistribution::Uniform { min: 30, max: 256 },
        2000.0,
    );
    let ts: Vec<&Trajectory2> = ds.iter().map(|(_, t)| t).collect();
    let hists = per_dim_hists(&ts, eps);
    let index = HistogramArtIndex::<2>::build_per_dim(&hists);
    let mut scratch = ArtScratch::new();
    let mut out = Vec::new();
    let q0 = ts[0];
    let stats = index.probe(
        QuerySignature::PerDim(&hists[0]),
        q0.len() as u32,
        &mut scratch,
        &mut out,
    );
    assert!(out.len() < 20, "touched {} of 200", out.len());
    let total_points: u64 = ts.iter().map(|t| t.len() as u64).sum();
    assert!(
        stats.postings_scanned < total_points / 10,
        "postings scanned ({} of {total_points} stored points) should track \
         the query, not the dataset",
        stats.postings_scanned
    );
}
