//! Signature indexes over the trie: quantized mean-value q-grams and
//! histogram bin signatures, probed over the ε-neighbourhood of each
//! query cell.
//!
//! # Quantization soundness
//!
//! Both indexes key on ε-grid cells `floor(x / bin)` with `bin ≥ ε`. If
//! two values are within ε, their cells differ by at most 1, so
//! enumerating the `3^D` neighbouring cells of a query cell
//! over-approximates the set of ε-matching data cells: the probe may
//! only *add* candidates relative to the exact merge join, never drop a
//! true one. The per-candidate quantities the probes return are
//! therefore sound inputs to the existing filters:
//!
//! - The q-gram probe counts, per trajectory, how many of the query's
//!   q-gram means land in a neighbouring cell of one of that
//!   trajectory's means. Every truly ε-matching mean is in a neighbouring
//!   cell, so the count upper-bounds [`SortedMeans::match_count`] and is
//!   a sound `v` for Theorem 1's count filter.
//! - The histogram probe accumulates, per trajectory, a one-sided
//!   neighbourhood capacity `cap = Σ_cells min(query mass, neighbouring
//!   data mass)`, an upper bound on the histogram matching capacity, so
//!   `max(lq, ls) − min(cap, lq, ls)` lower-bounds the histogram
//!   distance and hence `EDR`. A trajectory the probe never touches
//!   shares *no* dilated cell with the query — no element pair can
//!   ε-match — so its EDR equals `max(lq, ls)` **exactly** (every
//!   element of the longer side is an edit), which the caller can use
//!   without refining.

use std::sync::Mutex;

use trajsim_core::MatchThreshold;
use trajsim_histogram::TrajectoryHistogram;
use trajsim_qgram::SortedMeans;

use crate::tree::{ProbeStats, SignatureTree};

/// Quantizes one coordinate onto the grid of side `bin`.
fn cell_of(x: f64, bin: f64) -> i64 {
    (x / bin).floor() as i64
}

/// Appends the sign-biased big-endian encoding of one cell index:
/// byte-wise lexicographic order equals numeric order, so nearby cells
/// share long key prefixes and the trie's path compression bites.
fn push_cell(buf: &mut Vec<u8>, cell: i64) {
    buf.extend_from_slice(&((cell as u64) ^ (1 << 63)).to_be_bytes());
}

fn encode_cells<const D: usize>(buf: &mut Vec<u8>, cells: &[i64; D]) {
    buf.clear();
    for &c in cells {
        push_cell(buf, c);
    }
}

/// Calls `f` with each of the `3^D` cells at L∞ distance ≤ 1 from
/// `base` (including `base` itself) — the dilated neighbourhood any
/// ε-matching value's cell must fall in.
fn for_each_neighbour<const D: usize>(base: &[i64; D], mut f: impl FnMut(&[i64; D])) {
    let total = 3usize.pow(D as u32);
    let mut cell = [0i64; D];
    for mut code in 0..total {
        for d in 0..D {
            cell[d] = base[d] + (code % 3) as i64 - 1;
            code /= 3;
        }
        f(&cell);
    }
}

/// Reusable per-probe scratch: epoch-stamped per-trajectory arrays, so
/// resetting between probes costs O(ids touched), not O(dataset).
///
/// One scratch serves any number of indexes; it grows to the largest id
/// space it has seen. Wrap it in a [`Mutex`] (as [`ArtScratch::shared`]
/// does) to share it from engines that must be `Sync`.
#[derive(Debug, Default)]
pub struct ArtScratch {
    /// Query-scope stamp + accumulator (q-gram hit count or capacity).
    seen: Vec<u64>,
    acc: Vec<u64>,
    /// Inner-scope stamp + accumulator (one query gram / query cell).
    inner_seen: Vec<u64>,
    inner_acc: Vec<u64>,
    /// Fold-scope stamp + per-dimension aggregation (per-dim probes).
    fold_seen: Vec<u64>,
    fold_dims: Vec<u32>,
    fold_min: Vec<u64>,
    epoch: u64,
    touched: Vec<u32>,
    inner_touched: Vec<u32>,
    fold_touched: Vec<u32>,
    key: Vec<u8>,
}

impl ArtScratch {
    /// A fresh scratch; it grows on first use.
    pub fn new() -> ArtScratch {
        ArtScratch::default()
    }

    /// A fresh scratch behind a mutex, for `Sync` engines.
    pub fn shared() -> Mutex<ArtScratch> {
        Mutex::new(ArtScratch::new())
    }

    fn ensure(&mut self, n: usize) {
        if self.seen.len() < n {
            self.seen.resize(n, 0);
            self.acc.resize(n, 0);
            self.inner_seen.resize(n, 0);
            self.inner_acc.resize(n, 0);
            self.fold_seen.resize(n, 0);
            self.fold_dims.resize(n, 0);
            self.fold_min.resize(n, 0);
        }
    }

    /// A fresh epoch value (stamps initialized to 0 can never collide:
    /// the counter starts at 1).
    fn next_epoch(&mut self) -> u64 {
        self.epoch += 1;
        self.epoch
    }
}

/// Metrics-registry counter: trie nodes visited by index probes.
pub const NODES_VISITED: &str = "art.nodes_visited";
/// Metrics-registry counter: postings-list entries scanned by probes.
pub const POSTINGS_SCANNED: &str = "art.postings_scanned";
/// Metrics-registry counter: candidates emitted by index probes.
pub const CANDIDATES: &str = "art.candidates";

/// Flushes probe work counters into the global metrics registry.
fn flush_counters(stats: &ProbeStats, candidates: u64) {
    let m = trajsim_obs::metrics::global();
    m.counter(NODES_VISITED).add(stats.nodes_visited);
    m.counter(POSTINGS_SCANNED).add(stats.postings_scanned);
    m.counter(CANDIDATES).add(candidates);
}

/// Trie index over quantized mean-value q-grams: one key per q-gram
/// mean, quantized per dimension to the ε-grid.
#[derive(Debug)]
pub struct QgramArtIndex<const D: usize> {
    tree: SignatureTree,
    eps: f64,
    q: usize,
    num_ids: usize,
}

impl<const D: usize> QgramArtIndex<D> {
    /// Builds the index from every trajectory's sorted means (one
    /// insert per q-gram; ids ascend with the slice order).
    pub fn build(means: &[SortedMeans<D>], eps: MatchThreshold) -> QgramArtIndex<D> {
        let e = eps.value();
        let mut tree = SignatureTree::new(8 * D);
        let mut buf = Vec::with_capacity(8 * D);
        let mut q = 0usize;
        for (id, sm) in means.iter().enumerate() {
            q = sm.q();
            let mut cells = [0i64; D];
            for p in sm.means() {
                for (d, cell) in cells.iter_mut().enumerate() {
                    *cell = cell_of(p[d], e);
                }
                encode_cells(&mut buf, &cells);
                tree.insert(&buf, id as u32);
            }
        }
        QgramArtIndex {
            tree,
            eps: e,
            q,
            num_ids: means.len(),
        }
    }

    /// The underlying trie (diagnostics, tests).
    pub fn tree(&self) -> &SignatureTree {
        &self.tree
    }

    /// The q-gram size the index was built with.
    pub fn q(&self) -> usize {
        self.q
    }

    /// For each trajectory with at least one hit, an upper bound on how
    /// many of the query's q-gram means have an ε-matching mean in it:
    /// the number of query grams whose `3^D` neighbouring cells contain
    /// a gram of that trajectory. Appends `(id, count)` pairs sorted
    /// ascending by id to `out` and returns the probe's work counters
    /// (also flushed to the `art.*` metrics).
    ///
    /// Trajectories absent from `out` have **zero** matching means —
    /// sound to treat as `v = 0` in the Theorem 1 filter.
    ///
    /// # Panics
    ///
    /// Panics if `query` was built with a different `q` than the index.
    pub fn probe(
        &self,
        query: &SortedMeans<D>,
        scratch: &mut ArtScratch,
        out: &mut Vec<(u32, u32)>,
    ) -> ProbeStats {
        assert_eq!(query.q(), self.q, "q-gram sizes differ");
        scratch.ensure(self.num_ids);
        let query_epoch = scratch.next_epoch();
        let mut stats = ProbeStats::default();
        let mut touched = std::mem::take(&mut scratch.touched);
        touched.clear();
        let mut base = [0i64; D];
        for p in query.means() {
            for (d, cell) in base.iter_mut().enumerate() {
                *cell = cell_of(p[d], self.eps);
            }
            let gram_epoch = scratch.next_epoch();
            for_each_neighbour(&base, |cell| {
                encode_cells(&mut scratch.key, cell);
                let Some(postings) = self.tree.get(&scratch.key, &mut stats) else {
                    return;
                };
                for &(id, _) in postings {
                    let i = id as usize;
                    if scratch.inner_seen[i] == gram_epoch {
                        continue; // already counted for this query gram
                    }
                    scratch.inner_seen[i] = gram_epoch;
                    if scratch.seen[i] != query_epoch {
                        scratch.seen[i] = query_epoch;
                        scratch.acc[i] = 0;
                        touched.push(id);
                    }
                    scratch.acc[i] += 1;
                }
            });
        }
        touched.sort_unstable();
        out.extend(
            touched
                .iter()
                .map(|&id| (id, scratch.acc[id as usize] as u32)),
        );
        scratch.touched = touched;
        flush_counters(&stats, 0);
        stats
    }
}

/// One histogram-probe result: a trajectory sharing at least one
/// dilated cell with the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistCandidate {
    /// Trajectory id.
    pub id: u32,
    /// A lower bound on `EDR(query, id)`.
    pub lower_bound: u32,
    /// True iff `lower_bound` is the *exact* EDR: the trajectory shares
    /// no dilated cell with the query in at least one dimension, so no
    /// element pair ε-matches and every alignment costs `max(lq, ls)`.
    pub exact: bool,
}

/// The query-side signature matching the index layout.
#[derive(Debug, Clone, Copy)]
pub enum QuerySignature<'a, const D: usize> {
    /// One `D`-dimensional grid histogram.
    Grid(&'a TrajectoryHistogram<D>),
    /// One projected histogram per dimension.
    PerDim(&'a [TrajectoryHistogram<1>]),
}

#[derive(Debug)]
enum HistTrees {
    Grid(SignatureTree),
    PerDim(Vec<SignatureTree>),
}

/// Trie index over histogram bin signatures: each non-empty cell of
/// each trajectory's histogram is a key, with the cell's mass as the
/// posting count.
#[derive(Debug)]
pub struct HistogramArtIndex<const D: usize> {
    trees: HistTrees,
    /// Per-trajectory length (histogram total mass).
    lens: Vec<u32>,
}

impl<const D: usize> HistogramArtIndex<D> {
    /// Builds the grid-layout index from full `D`-dimensional
    /// histograms (cells are already quantized with bin ≥ ε).
    pub fn build_grid(hists: &[TrajectoryHistogram<D>]) -> HistogramArtIndex<D> {
        let mut tree = SignatureTree::new(8 * D);
        let mut buf = Vec::with_capacity(8 * D);
        let mut lens = Vec::with_capacity(hists.len());
        for (id, h) in hists.iter().enumerate() {
            lens.push(h.total());
            for (cell, mass) in h.bins() {
                encode_cells(&mut buf, cell);
                tree.insert_n(&buf, id as u32, *mass);
            }
        }
        HistogramArtIndex {
            trees: HistTrees::Grid(tree),
            lens,
        }
    }

    /// Builds the per-dimension index from projected 1-d histograms
    /// (`hists[id][dim]`).
    ///
    /// # Panics
    ///
    /// Panics if any trajectory has a histogram count other than `D`.
    pub fn build_per_dim(hists: &[Vec<TrajectoryHistogram<1>>]) -> HistogramArtIndex<D> {
        let mut trees: Vec<SignatureTree> = (0..D).map(|_| SignatureTree::new(8)).collect();
        let mut buf = Vec::with_capacity(8);
        let mut lens = Vec::with_capacity(hists.len());
        for (id, per_dim) in hists.iter().enumerate() {
            assert_eq!(per_dim.len(), D, "one projected histogram per dimension");
            lens.push(per_dim.first().map_or(0, TrajectoryHistogram::total));
            for (tree, h) in trees.iter_mut().zip(per_dim) {
                for (cell, mass) in h.bins() {
                    encode_cells(&mut buf, cell);
                    tree.insert_n(&buf, id as u32, *mass);
                }
            }
        }
        HistogramArtIndex {
            trees: HistTrees::PerDim(trees),
            lens,
        }
    }

    /// Per-trajectory lengths (histogram total mass), indexed by id.
    pub fn lens(&self) -> &[u32] {
        &self.lens
    }

    /// Probes the index with a query signature of the matching layout.
    /// Appends one [`HistCandidate`] per *touched* trajectory to `out`,
    /// sorted ascending by id, and returns the probe's work counters
    /// (also flushed to the `art.*` metrics, including one `candidates`
    /// increment per touched trajectory).
    ///
    /// Trajectories absent from `out` share no dilated cell with the
    /// query at all: their EDR is exactly `max(query_len, lens[id])`.
    ///
    /// # Panics
    ///
    /// Panics if the signature layout does not match the index layout.
    pub fn probe(
        &self,
        query: QuerySignature<'_, D>,
        query_len: u32,
        scratch: &mut ArtScratch,
        out: &mut Vec<HistCandidate>,
    ) -> ProbeStats {
        scratch.ensure(self.lens.len());
        let mut stats = ProbeStats::default();
        match (&self.trees, query) {
            (HistTrees::Grid(tree), QuerySignature::Grid(h)) => {
                let mut touched = std::mem::take(&mut scratch.touched);
                capacity_pass(tree, h.bins(), scratch, &mut touched, &mut stats);
                touched.sort_unstable();
                out.extend(touched.iter().map(|&id| {
                    let cap = scratch.acc[id as usize];
                    bounded(id, query_len, self.lens[id as usize], Some(cap))
                }));
                flush_counters(&stats, touched.len() as u64);
                scratch.touched = touched;
            }
            (HistTrees::PerDim(trees), QuerySignature::PerDim(per_dim)) => {
                assert_eq!(per_dim.len(), D, "one projected histogram per dimension");
                let fold_epoch = scratch.next_epoch();
                let mut fold_touched = std::mem::take(&mut scratch.fold_touched);
                fold_touched.clear();
                let mut touched = std::mem::take(&mut scratch.touched);
                for (tree, h) in trees.iter().zip(per_dim) {
                    capacity_pass(tree, h.bins(), scratch, &mut touched, &mut stats);
                    for &id in &touched {
                        let i = id as usize;
                        let cap = scratch.acc[i];
                        if scratch.fold_seen[i] != fold_epoch {
                            scratch.fold_seen[i] = fold_epoch;
                            scratch.fold_dims[i] = 1;
                            scratch.fold_min[i] = cap;
                            fold_touched.push(id);
                        } else {
                            scratch.fold_dims[i] += 1;
                            scratch.fold_min[i] = scratch.fold_min[i].min(cap);
                        }
                    }
                }
                fold_touched.sort_unstable();
                out.extend(fold_touched.iter().map(|&id| {
                    let i = id as usize;
                    // Touched in every dimension: capacity bound with
                    // the weakest dimension (the tightest per-dim lower
                    // bound). Missing a dimension: no ε-match possible,
                    // EDR is exactly max of the lengths.
                    let cap = (scratch.fold_dims[i] == D as u32).then_some(scratch.fold_min[i]);
                    bounded(id, query_len, self.lens[i], cap)
                }));
                flush_counters(&stats, fold_touched.len() as u64);
                scratch.touched = touched;
                scratch.fold_touched = fold_touched;
            }
            _ => panic!("query signature layout does not match index layout"),
        }
        stats
    }
}

/// Turns a matching capacity into a [`HistCandidate`]: `cap = None`
/// means "provably no ε-matching element pair", where EDR is exact.
fn bounded(id: u32, query_len: u32, data_len: u32, cap: Option<u64>) -> HistCandidate {
    let upper = query_len.max(data_len);
    match cap {
        Some(cap) => HistCandidate {
            id,
            lower_bound: upper - (cap.min(u64::from(query_len.min(data_len))) as u32).min(upper),
            exact: false,
        },
        None => HistCandidate {
            id,
            lower_bound: upper,
            exact: true,
        },
    }
}

/// One capacity accumulation pass over one tree: for each query cell of
/// mass `m`, finds all data mass in the cell's 3-neighbourhood per
/// trajectory and adds `min(m, matched mass)` to `scratch.acc`.
/// `touched` is reset and refilled with the ids seen (unsorted).
fn capacity_pass<const D: usize>(
    tree: &SignatureTree,
    bins: &[([i64; D], u32)],
    scratch: &mut ArtScratch,
    touched: &mut Vec<u32>,
    stats: &mut ProbeStats,
) {
    let query_epoch = scratch.next_epoch();
    touched.clear();
    let mut inner_touched = std::mem::take(&mut scratch.inner_touched);
    for (cell, mass) in bins {
        let cell_epoch = scratch.next_epoch();
        inner_touched.clear();
        for_each_neighbour(cell, |neighbour| {
            encode_cells(&mut scratch.key, neighbour);
            let Some(postings) = tree.get(&scratch.key, stats) else {
                return;
            };
            for &(id, data_mass) in postings {
                let i = id as usize;
                if scratch.inner_seen[i] != cell_epoch {
                    scratch.inner_seen[i] = cell_epoch;
                    scratch.inner_acc[i] = 0;
                    inner_touched.push(id);
                }
                scratch.inner_acc[i] += u64::from(data_mass);
            }
        });
        for &id in &inner_touched {
            let i = id as usize;
            if scratch.seen[i] != query_epoch {
                scratch.seen[i] = query_epoch;
                scratch.acc[i] = 0;
                touched.push(id);
            }
            scratch.acc[i] += u64::from(*mass).min(scratch.inner_acc[i]);
        }
    }
    scratch.inner_touched = inner_touched;
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use trajsim_core::Trajectory2;
    use trajsim_distance::edr;
    use trajsim_histogram::histogram_distance_quick;

    fn eps(v: f64) -> MatchThreshold {
        MatchThreshold::new(v).unwrap()
    }

    fn trajectories(points: &[Vec<(f64, f64)>]) -> Vec<Trajectory2> {
        points.iter().map(|p| Trajectory2::from_xy(p)).collect()
    }

    #[test]
    fn neighbour_enumeration_covers_the_full_box() {
        let mut seen = Vec::new();
        for_each_neighbour(&[10i64, -3], |c| seen.push(*c));
        assert_eq!(seen.len(), 9);
        for dx in -1..=1i64 {
            for dy in -1..=1i64 {
                assert!(seen.contains(&[10 + dx, -3 + dy]));
            }
        }
    }

    #[test]
    fn cell_encoding_preserves_order() {
        let mut keys: Vec<Vec<u8>> = Vec::new();
        for c in [i64::MIN, -5, -1, 0, 1, 7, i64::MAX] {
            let mut buf = Vec::new();
            push_cell(&mut buf, c);
            keys.push(buf);
        }
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "byte order must equal numeric order");
    }

    #[test]
    fn qgram_probe_counts_grid_matches() {
        let e = eps(1.0);
        let ts = trajectories(&[
            vec![(0.0, 0.0), (0.1, 0.1)],
            vec![(100.0, 100.0), (100.1, 100.1)],
        ]);
        let means: Vec<SortedMeans<2>> = ts.iter().map(|t| SortedMeans::build(t, 1)).collect();
        let index = QgramArtIndex::build(&means, e);
        let query = SortedMeans::build(&Trajectory2::from_xy(&[(0.5, 0.5), (0.6, 0.6)]), 1);
        let mut scratch = ArtScratch::new();
        let mut out = Vec::new();
        let stats = index.probe(&query, &mut scratch, &mut out);
        // Both query grams neighbour trajectory 0's cells; trajectory 1
        // is far away and must not even be touched.
        assert_eq!(out, vec![(0, 2)]);
        assert!(stats.nodes_visited > 0);
    }

    #[test]
    fn hist_probe_flags_untouchable_ids_as_exact() {
        let e = eps(1.0);
        let ts = trajectories(&[
            vec![(0.0, 0.0), (1.0, 1.0)],
            // Shares x-cells with the query but lives far away in y:
            // touched in dim 0 only -> exact max-length distance.
            vec![(0.0, 500.0), (1.0, 500.0), (2.0, 500.0)],
        ]);
        let hists: Vec<Vec<TrajectoryHistogram<1>>> = ts
            .iter()
            .map(|t| {
                (0..2)
                    .map(|d| TrajectoryHistogram::<2>::build_projected(t, e, d))
                    .collect()
            })
            .collect();
        let index = HistogramArtIndex::<2>::build_per_dim(&hists);
        let q = Trajectory2::from_xy(&[(0.5, 0.5), (1.5, 1.5)]);
        let qh: Vec<TrajectoryHistogram<1>> = (0..2)
            .map(|d| TrajectoryHistogram::<2>::build_projected(&q, e, d))
            .collect();
        let mut scratch = ArtScratch::new();
        let mut out = Vec::new();
        index.probe(
            QuerySignature::PerDim(&qh),
            q.len() as u32,
            &mut scratch,
            &mut out,
        );
        assert_eq!(out.len(), 2);
        assert!(!out[0].exact, "trajectory 0 overlaps in both dims");
        assert!(out[1].exact, "trajectory 1 misses the y dimension");
        assert_eq!(out[1].lower_bound, 3, "max(2, 3) edits exactly");
        assert_eq!(out[1].lower_bound as usize, edr(&q, &ts[1], e));
    }

    #[test]
    #[should_panic(expected = "layout")]
    fn mismatched_signature_layout_panics() {
        let e = eps(1.0);
        let ts = trajectories(&[vec![(0.0, 0.0)]]);
        let hists: Vec<TrajectoryHistogram<2>> = ts
            .iter()
            .map(|t| TrajectoryHistogram::build(t, e))
            .collect();
        let index = HistogramArtIndex::build_grid(&hists);
        let qh: Vec<TrajectoryHistogram<1>> = vec![];
        let mut scratch = ArtScratch::new();
        let mut out = Vec::new();
        index.probe(QuerySignature::PerDim(&qh), 1, &mut scratch, &mut out);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The probe's per-trajectory count dominates the exact merge
        /// join count (the superset/soundness property of the ε-grid),
        /// and ids it never touches truly have zero matches.
        #[test]
        fn qgram_probe_dominates_merge_join(
            db in proptest::collection::vec(
                proptest::collection::vec((-4.0..4.0f64, -4.0..4.0f64), 0..12), 1..12),
            query in proptest::collection::vec((-4.0..4.0f64, -4.0..4.0f64), 0..12),
            q in 1usize..3,
            e in 0.1..2.0f64,
        ) {
            let e = eps(e);
            let ts = trajectories(&db);
            let means: Vec<SortedMeans<2>> =
                ts.iter().map(|t| SortedMeans::build(t, q)).collect();
            let index = QgramArtIndex::build(&means, e);
            let qm = SortedMeans::build(&Trajectory2::from_xy(&query), q);
            let mut scratch = ArtScratch::new();
            let mut out = Vec::new();
            index.probe(&qm, &mut scratch, &mut out);
            for (id, sm) in means.iter().enumerate() {
                let exact = qm.match_count(sm, e);
                let indexed = out
                    .binary_search_by_key(&(id as u32), |&(id, _)| id)
                    .map(|i| out[i].1 as usize)
                    .unwrap_or(0);
                prop_assert!(
                    indexed >= exact,
                    "id {id}: indexed count {indexed} < exact {exact}"
                );
            }
        }

        /// Histogram probe lower bounds never exceed the quick filter's
        /// bound for touched ids (we drop one capacity term), and both
        /// touched-exact and untouched ids have EDR equal to the max
        /// length exactly.
        #[test]
        fn hist_probe_bounds_are_sound(
            db in proptest::collection::vec(
                proptest::collection::vec((-4.0..4.0f64, -4.0..4.0f64), 1..10), 1..10),
            query in proptest::collection::vec((-4.0..4.0f64, -4.0..4.0f64), 1..10),
            e in 0.1..2.0f64,
        ) {
            let e = eps(e);
            let ts = trajectories(&db);
            let q = Trajectory2::from_xy(&query);
            let hists: Vec<Vec<TrajectoryHistogram<1>>> = ts
                .iter()
                .map(|t| (0..2)
                    .map(|d| TrajectoryHistogram::<2>::build_projected(t, e, d))
                    .collect())
                .collect();
            let index = HistogramArtIndex::<2>::build_per_dim(&hists);
            let qh: Vec<TrajectoryHistogram<1>> = (0..2)
                .map(|d| TrajectoryHistogram::<2>::build_projected(&q, e, d))
                .collect();
            let mut scratch = ArtScratch::new();
            let mut out = Vec::new();
            index.probe(QuerySignature::PerDim(&qh), q.len() as u32, &mut scratch, &mut out);
            for (id, t) in ts.iter().enumerate() {
                let truth = edr(&q, t, e);
                let hit = out
                    .binary_search_by_key(&(id as u32), |c| c.id)
                    .map(|i| out[i])
                    .ok();
                match hit {
                    Some(c) => {
                        prop_assert!(
                            c.lower_bound as usize <= truth,
                            "id {id}: bound {} > EDR {truth}", c.lower_bound
                        );
                        if c.exact {
                            prop_assert_eq!(c.lower_bound as usize, truth);
                        } else {
                            // Never tighter than the quick filter on the
                            // same projected histograms.
                            let quick = (0..2)
                                .map(|d| histogram_distance_quick(&qh[d], &hists[id][d]))
                                .max()
                                .unwrap();
                            prop_assert!(c.lower_bound as usize <= quick);
                        }
                    }
                    None => prop_assert_eq!(
                        q.len().max(t.len()),
                        truth,
                        "untouched id {} must be at exact max-length distance", id
                    ),
                }
            }
        }
    }
}
