//! A byte-keyed adaptive radix trie over fixed-length signature keys,
//! after the ART design of Leis et al.: inner nodes adapt their fanout
//! representation (Node4 → Node16 → Node48 → Node256) to their actual
//! child count, one-child chains are collapsed into per-node prefixes
//! (path compression), and single-key subtrees stay unexpanded leaves
//! holding the full key (lazy expansion). Leaves carry postings lists of
//! `(trajectory id, count)` pairs, so one trie walk answers "which
//! trajectories have a signature in this cell, and how much mass" —
//! shared key prefixes are traversed once for the whole dataset instead
//! of once per candidate.
//!
//! The trie is deliberately plain safe Rust: keys here are 8–16 bytes of
//! quantized grid cells, so the depth is small and the win comes from
//! visiting only the dataset's *occupied* cells, not from squeezing the
//! last nanosecond out of a node search.

/// Probe-side work counters, accumulated across every lookup of one
/// probe and flushed to the metrics registry by the index layer (the
/// `art.nodes_visited` / `art.postings_scanned` counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeStats {
    /// Trie nodes (inner or leaf) touched during descents.
    pub nodes_visited: u64,
    /// Postings entries returned to the caller for scanning.
    pub postings_scanned: u64,
}

impl ProbeStats {
    /// Accumulates another probe's counters.
    pub fn merge(&mut self, other: &ProbeStats) {
        self.nodes_visited += other.nodes_visited;
        self.postings_scanned += other.postings_scanned;
    }
}

/// One posting: `(trajectory id, number of signature entries of that
/// trajectory in this exact cell)`.
pub type Posting = (u32, u32);

#[derive(Debug)]
struct Leaf {
    /// The full key — lazy expansion: a single-key subtree is never
    /// expanded into inner nodes, so lookups compare the stored tail.
    key: Box<[u8]>,
    /// Ascending by id (ids are inserted in nondecreasing order).
    postings: Vec<Posting>,
}

#[derive(Debug)]
struct Inner {
    /// Path compression: the key bytes every child shares at this point.
    prefix: Vec<u8>,
    children: Children,
}

#[derive(Debug)]
enum Node {
    Leaf(Box<Leaf>),
    Inner(Box<Inner>),
}

/// The adaptive fanout representations. `N4`/`N16` keep a sorted key
/// array searched linearly; `N48` indirects through a 256-byte slot map;
/// `N256` indexes children directly by key byte.
#[derive(Debug)]
enum Children {
    N4 {
        keys: Vec<u8>,
        nodes: Vec<Node>,
    },
    N16 {
        keys: Vec<u8>,
        nodes: Vec<Node>,
    },
    N48 {
        index: Box<[u8; 256]>,
        nodes: Vec<Node>,
    },
    N256 {
        slots: Vec<Option<Node>>,
    },
}

impl Children {
    fn new() -> Children {
        Children::N4 {
            keys: Vec::with_capacity(4),
            nodes: Vec::with_capacity(4),
        }
    }

    fn get(&self, byte: u8) -> Option<&Node> {
        match self {
            Children::N4 { keys, nodes } | Children::N16 { keys, nodes } => {
                keys.iter().position(|&k| k == byte).map(|i| &nodes[i])
            }
            Children::N48 { index, nodes } => match index[byte as usize] {
                0 => None,
                slot => Some(&nodes[slot as usize - 1]),
            },
            Children::N256 { slots } => slots[byte as usize].as_ref(),
        }
    }

    fn get_mut(&mut self, byte: u8) -> Option<&mut Node> {
        match self {
            Children::N4 { keys, nodes } | Children::N16 { keys, nodes } => {
                keys.iter().position(|&k| k == byte).map(|i| &mut nodes[i])
            }
            Children::N48 { index, nodes } => match index[byte as usize] {
                0 => None,
                slot => Some(&mut nodes[slot as usize - 1]),
            },
            Children::N256 { slots } => slots[byte as usize].as_mut(),
        }
    }

    /// Number of children (invariant checks only).
    #[cfg(test)]
    fn len(&self) -> usize {
        match self {
            Children::N4 { nodes, .. }
            | Children::N16 { nodes, .. }
            | Children::N48 { nodes, .. } => nodes.len(),
            Children::N256 { slots } => slots.iter().filter(|s| s.is_some()).count(),
        }
    }

    /// Adds a child under `byte` (which must not be present), growing the
    /// representation when the current one is full: 4 → 16 → 48 → 256.
    fn add(&mut self, byte: u8, node: Node) {
        debug_assert!(self.get(byte).is_none(), "duplicate child byte");
        // Grow first if full, then insert into whatever we became.
        match self {
            Children::N4 { keys, nodes } if keys.len() == 4 => {
                let mut k16 = Vec::with_capacity(16);
                let mut n16 = Vec::with_capacity(16);
                k16.append(keys);
                n16.append(nodes);
                *self = Children::N16 {
                    keys: k16,
                    nodes: n16,
                };
            }
            Children::N16 { keys, nodes } if keys.len() == 16 => {
                let mut index = Box::new([0u8; 256]);
                let moved = std::mem::take(nodes);
                for (i, &k) in keys.iter().enumerate() {
                    index[k as usize] = i as u8 + 1;
                }
                *self = Children::N48 {
                    index,
                    nodes: moved,
                };
            }
            Children::N48 { index, nodes } if nodes.len() == 48 => {
                let mut slots: Vec<Option<Node>> = (0..256).map(|_| None).collect();
                let moved = std::mem::take(nodes);
                let index = std::mem::replace(index, Box::new([0u8; 256]));
                let mut by_slot: Vec<Option<Node>> = moved.into_iter().map(Some).collect();
                for b in 0..256usize {
                    if index[b] != 0 {
                        slots[b] = by_slot[index[b] as usize - 1].take();
                    }
                }
                *self = Children::N256 { slots };
            }
            _ => {}
        }
        match self {
            Children::N4 { keys, nodes } | Children::N16 { keys, nodes } => {
                // Keep keys sorted so iteration (and debug output) is
                // deterministic; linear search does not care.
                let at = keys.iter().position(|&k| k > byte).unwrap_or(keys.len());
                keys.insert(at, byte);
                nodes.insert(at, node);
            }
            Children::N48 { index, nodes } => {
                nodes.push(node);
                index[byte as usize] = nodes.len() as u8;
            }
            Children::N256 { slots } => {
                slots[byte as usize] = Some(node);
            }
        }
    }
}

/// Structural statistics of a tree, for tests and diagnostics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TreeShape {
    /// Leaves (= distinct keys).
    pub leaves: usize,
    /// Inner nodes with ≤4 children.
    pub node4: usize,
    /// Inner nodes with 5–16 children.
    pub node16: usize,
    /// Inner nodes with 17–48 children.
    pub node48: usize,
    /// Inner nodes with 49–256 children.
    pub node256: usize,
    /// Total key bytes absorbed into compressed prefixes.
    pub prefix_bytes: usize,
}

/// The adaptive radix trie over fixed-length byte keys with postings
/// lists at the leaves.
#[derive(Debug)]
pub struct SignatureTree {
    root: Option<Node>,
    key_len: usize,
    distinct_keys: usize,
    postings_len: u64,
}

impl SignatureTree {
    /// An empty tree over keys of exactly `key_len` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `key_len == 0`.
    pub fn new(key_len: usize) -> SignatureTree {
        assert!(key_len > 0, "signature keys must be non-empty");
        SignatureTree {
            root: None,
            key_len,
            distinct_keys: 0,
            postings_len: 0,
        }
    }

    /// Key length in bytes.
    pub fn key_len(&self) -> usize {
        self.key_len
    }

    /// Number of distinct keys (leaves).
    pub fn len(&self) -> usize {
        self.distinct_keys
    }

    /// True iff no key was inserted.
    pub fn is_empty(&self) -> bool {
        self.distinct_keys == 0
    }

    /// Total postings entries across all leaves.
    pub fn postings_len(&self) -> u64 {
        self.postings_len
    }

    /// Records one signature entry of trajectory `id` under `key`:
    /// the key's postings list gains `(id, 1)` or bumps the count of its
    /// last entry. Ids must be inserted in nondecreasing order (the index
    /// builders iterate the dataset in id order), which keeps the bump an
    /// O(1) last-element check and postings sorted by construction.
    ///
    /// # Panics
    ///
    /// Panics if `key` has the wrong length or `id` regresses below the
    /// last id already posted under `key`.
    pub fn insert(&mut self, key: &[u8], id: u32) {
        self.insert_n(key, id, 1);
    }

    /// Like [`SignatureTree::insert`] but records `n` entries at once
    /// (histogram cells carry a per-cell mass, inserted in one call).
    ///
    /// # Panics
    ///
    /// Panics additionally if `n == 0`.
    pub fn insert_n(&mut self, key: &[u8], id: u32, n: u32) {
        assert_eq!(key.len(), self.key_len, "key length mismatch");
        assert!(n > 0, "posting count must be positive");
        match &mut self.root {
            None => {
                self.root = Some(Node::Leaf(Box::new(Leaf {
                    key: key.into(),
                    postings: vec![(id, n)],
                })));
                self.distinct_keys = 1;
                self.postings_len = 1;
            }
            Some(root) => {
                let (created, posted) = insert_rec(root, key, 0, id, n);
                self.distinct_keys += usize::from(created);
                self.postings_len += u64::from(posted);
            }
        }
    }

    /// Looks up `key`, counting the walk into `stats`. Returns the
    /// postings list, sorted ascending by id, or `None` for an absent
    /// key. The postings length is added to `stats.postings_scanned`
    /// (the caller is about to scan them — that is what lookups are
    /// for).
    pub fn get<'t>(&'t self, key: &[u8], stats: &mut ProbeStats) -> Option<&'t [Posting]> {
        debug_assert_eq!(key.len(), self.key_len, "key length mismatch");
        let mut node = self.root.as_ref()?;
        let mut depth = 0usize;
        loop {
            stats.nodes_visited += 1;
            match node {
                Node::Leaf(leaf) => {
                    return if leaf.key[depth..] == key[depth..] {
                        stats.postings_scanned += leaf.postings.len() as u64;
                        Some(&leaf.postings)
                    } else {
                        None
                    };
                }
                Node::Inner(inner) => {
                    let end = depth + inner.prefix.len();
                    if key[depth..end] != inner.prefix[..] {
                        return None;
                    }
                    node = inner.children.get(key[end])?;
                    depth = end + 1;
                }
            }
        }
    }

    /// Walks the whole tree counting node kinds.
    pub fn shape(&self) -> TreeShape {
        let mut shape = TreeShape::default();
        fn walk(node: &Node, shape: &mut TreeShape) {
            match node {
                Node::Leaf(_) => shape.leaves += 1,
                Node::Inner(inner) => {
                    shape.prefix_bytes += inner.prefix.len();
                    match &inner.children {
                        Children::N4 { nodes, .. } => {
                            shape.node4 += 1;
                            nodes.iter().for_each(|n| walk(n, shape));
                        }
                        Children::N16 { nodes, .. } => {
                            shape.node16 += 1;
                            nodes.iter().for_each(|n| walk(n, shape));
                        }
                        Children::N48 { nodes, .. } => {
                            shape.node48 += 1;
                            nodes.iter().for_each(|n| walk(n, shape));
                        }
                        Children::N256 { slots } => {
                            shape.node256 += 1;
                            slots.iter().flatten().for_each(|n| walk(n, shape));
                        }
                    }
                }
            }
        }
        if let Some(root) = &self.root {
            walk(root, &mut shape);
        }
        shape
    }
}

/// First index at which the slices differ (their common prefix length).
fn mismatch(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

fn bump(postings: &mut Vec<Posting>, id: u32, n: u32) -> bool {
    match postings.last_mut() {
        Some(last) if last.0 == id => {
            last.1 += n;
            false
        }
        Some(last) => {
            assert!(last.0 < id, "ids must be inserted in nondecreasing order");
            postings.push((id, n));
            true
        }
        None => {
            postings.push((id, n));
            true
        }
    }
}

/// Swaps a placeholder into `slot` so the old node can be moved into a
/// new parent (splits restructure in place without unsafe code).
fn take(slot: &mut Node) -> Node {
    std::mem::replace(
        slot,
        Node::Leaf(Box::new(Leaf {
            key: Box::from([]),
            postings: Vec::new(),
        })),
    )
}

/// Inserts under the subtree at `slot`, whose key bytes before `depth`
/// are already matched. Returns `(new distinct key, new posting entry)`.
fn insert_rec(slot: &mut Node, key: &[u8], depth: usize, id: u32, n: u32) -> (bool, bool) {
    match slot {
        Node::Leaf(leaf) => {
            if leaf.key[depth..] == key[depth..] {
                let posted = bump(&mut leaf.postings, id, n);
                return (false, posted);
            }
            // Lazy expansion ends here: split at the first divergent
            // byte. Fixed-length keys guarantee one exists.
            let at = depth + mismatch(&leaf.key[depth..], &key[depth..]);
            let old = take(slot);
            let old_byte = match &old {
                Node::Leaf(l) => l.key[at],
                Node::Inner(_) => unreachable!("old node is the leaf just taken"),
            };
            let mut children = Children::new();
            children.add(old_byte, old);
            children.add(
                key[at],
                Node::Leaf(Box::new(Leaf {
                    key: key.into(),
                    postings: vec![(id, n)],
                })),
            );
            *slot = Node::Inner(Box::new(Inner {
                prefix: key[depth..at].to_vec(),
                children,
            }));
            (true, true)
        }
        Node::Inner(inner) => {
            let common = mismatch(&inner.prefix, &key[depth..]);
            if common < inner.prefix.len() {
                // The new key leaves the compressed path early: split the
                // prefix. The old inner keeps its tail (after the pivot
                // byte), the new parent keeps the head.
                let head = inner.prefix[..common].to_vec();
                let pivot = inner.prefix[common];
                inner.prefix.drain(..=common);
                let old = take(slot);
                let mut children = Children::new();
                children.add(pivot, old);
                children.add(
                    key[depth + common],
                    Node::Leaf(Box::new(Leaf {
                        key: key.into(),
                        postings: vec![(id, n)],
                    })),
                );
                *slot = Node::Inner(Box::new(Inner {
                    prefix: head,
                    children,
                }));
                return (true, true);
            }
            let at = depth + inner.prefix.len();
            let byte = key[at];
            match inner.children.get_mut(byte) {
                Some(child) => insert_rec(child, key, at + 1, id, n),
                None => {
                    inner.children.add(
                        byte,
                        Node::Leaf(Box::new(Leaf {
                            key: key.into(),
                            postings: vec![(id, n)],
                        })),
                    );
                    (true, true)
                }
            }
        }
    }
}

/// Debug-build invariant checks used by tests: child counts match the
/// representation tier.
#[cfg(test)]
fn check_node(node: &Node) {
    if let Node::Inner(inner) = node {
        let n = inner.children.len();
        assert!(n >= 2, "inner node with {n} children defeats compression");
        match &inner.children {
            Children::N4 { .. } => assert!(n <= 4),
            Children::N16 { .. } => assert!((5..=16).contains(&n) || n <= 16),
            Children::N48 { .. } => assert!((17..=48).contains(&n)),
            Children::N256 { .. } => assert!(n >= 49),
        }
        match &inner.children {
            Children::N4 { nodes, .. }
            | Children::N16 { nodes, .. }
            | Children::N48 { nodes, .. } => nodes.iter().for_each(check_node),
            Children::N256 { slots } => slots.iter().flatten().for_each(check_node),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    fn stats() -> ProbeStats {
        ProbeStats::default()
    }

    #[test]
    fn empty_tree_finds_nothing() {
        let t = SignatureTree::new(4);
        let mut s = stats();
        assert!(t.get(&[0, 0, 0, 0], &mut s).is_none());
        assert!(t.is_empty());
        assert_eq!(s.nodes_visited, 0);
    }

    #[test]
    fn single_key_stays_a_lazy_leaf() {
        let mut t = SignatureTree::new(8);
        t.insert(&[1, 2, 3, 4, 5, 6, 7, 8], 0);
        t.insert(&[1, 2, 3, 4, 5, 6, 7, 8], 0);
        t.insert(&[1, 2, 3, 4, 5, 6, 7, 8], 3);
        let shape = t.shape();
        assert_eq!(shape.leaves, 1);
        assert_eq!(shape.node4 + shape.node16 + shape.node48 + shape.node256, 0);
        let mut s = stats();
        let postings = t.get(&[1, 2, 3, 4, 5, 6, 7, 8], &mut s).unwrap();
        assert_eq!(postings, &[(0, 2), (3, 1)]);
        assert_eq!(s.nodes_visited, 1, "lazy leaf answers in one visit");
        assert_eq!(s.postings_scanned, 2);
    }

    #[test]
    fn diverging_keys_split_with_a_compressed_prefix() {
        let mut t = SignatureTree::new(8);
        t.insert(&[9, 9, 9, 9, 1, 0, 0, 0], 0);
        t.insert(&[9, 9, 9, 9, 2, 0, 0, 0], 1);
        let shape = t.shape();
        assert_eq!(shape.leaves, 2);
        assert_eq!(shape.node4, 1);
        // The shared head lives in the inner node's prefix, not in a
        // chain of one-child nodes.
        assert_eq!(shape.prefix_bytes, 4);
        let mut s = stats();
        assert_eq!(t.get(&[9, 9, 9, 9, 1, 0, 0, 0], &mut s).unwrap(), &[(0, 1)]);
        assert_eq!(s.nodes_visited, 2);
        assert!(t.get(&[9, 9, 9, 8, 1, 0, 0, 0], &mut s).is_none());
        // Key absent below an existing child: descent stops at the leaf.
        assert!(t.get(&[9, 9, 9, 9, 1, 0, 0, 1], &mut s).is_none());
    }

    #[test]
    fn node_representation_grows_through_every_tier() {
        // 0..=255 keys differing in their last byte force one inner node
        // through N4 -> N16 -> N48 -> N256.
        let mut t = SignatureTree::new(4);
        for b in 0..=255u8 {
            for tier in [4usize, 16, 48, 256] {
                if usize::from(b) + 1 == tier {
                    // About to outgrow; nothing to assert here, the
                    // shape checks below cover the result.
                }
                let _ = tier;
            }
            t.insert(&[7, 7, 7, b], b as u32);
        }
        let shape = t.shape();
        assert_eq!(shape.leaves, 256);
        assert_eq!(shape.node256, 1);
        assert_eq!(shape.node4 + shape.node16 + shape.node48, 0);
        check_node(t.root.as_ref().unwrap());
        let mut s = stats();
        for b in 0..=255u8 {
            assert_eq!(t.get(&[7, 7, 7, b], &mut s).unwrap(), &[(b as u32, 1)]);
        }
    }

    #[test]
    fn prefix_split_keeps_old_subtree_reachable() {
        let mut t = SignatureTree::new(6);
        // Two keys sharing 4 bytes build an inner node with prefix
        // [5,5,5,5]; the third diverges inside that prefix.
        t.insert(&[5, 5, 5, 5, 1, 1], 0);
        t.insert(&[5, 5, 5, 5, 2, 2], 1);
        t.insert(&[5, 5, 9, 9, 9, 9], 2);
        let mut s = stats();
        assert_eq!(t.get(&[5, 5, 5, 5, 1, 1], &mut s).unwrap(), &[(0, 1)]);
        assert_eq!(t.get(&[5, 5, 5, 5, 2, 2], &mut s).unwrap(), &[(1, 1)]);
        assert_eq!(t.get(&[5, 5, 9, 9, 9, 9], &mut s).unwrap(), &[(2, 1)]);
        assert_eq!(t.len(), 3);
        check_node(t.root.as_ref().unwrap());
    }

    #[test]
    #[should_panic(expected = "nondecreasing")]
    fn regressing_ids_panic() {
        let mut t = SignatureTree::new(1);
        t.insert(&[1], 5);
        t.insert(&[1], 4);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_key_length_panics() {
        let mut t = SignatureTree::new(2);
        t.insert(&[1], 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The trie agrees with a BTreeMap oracle on arbitrary key sets:
        /// same distinct keys, same postings under every key, and absent
        /// keys stay absent.
        #[test]
        fn agrees_with_map_oracle(
            keys in proptest::collection::vec(
                proptest::collection::vec(0u8..4, 6..7), 0..200),
            probes in proptest::collection::vec(
                proptest::collection::vec(0u8..5, 6..7), 0..50),
        ) {
            let mut tree = SignatureTree::new(6);
            let mut oracle: BTreeMap<Vec<u8>, Vec<Posting>> = BTreeMap::new();
            for (i, key) in keys.iter().enumerate() {
                // Ids nondecreasing: several grams of one trajectory in
                // a row, like the index builders produce.
                let id = (i / 3) as u32;
                tree.insert(key, id);
                let postings = oracle.entry(key.clone()).or_default();
                match postings.last_mut() {
                    Some(last) if last.0 == id => last.1 += 1,
                    _ => postings.push((id, 1)),
                }
            }
            prop_assert_eq!(tree.len(), oracle.len());
            let total: u64 = oracle.values().map(|p| p.len() as u64).sum();
            prop_assert_eq!(tree.postings_len(), total);
            let mut s = ProbeStats::default();
            for (key, want) in &oracle {
                let got = tree.get(key, &mut s);
                prop_assert_eq!(got, Some(want.as_slice()));
            }
            for probe in &probes {
                let got = tree.get(probe, &mut s).map(<[Posting]>::to_vec);
                let want = oracle.get(probe).cloned();
                prop_assert_eq!(got, want);
            }
            if let Some(root) = &tree.root {
                check_node(root);
            }
        }

        /// Depth is bounded by the key length: every inner level consumes
        /// at least one key byte, so a probe visits at most `key_len`
        /// nodes plus the leaf.
        #[test]
        fn probe_visits_at_most_key_len_nodes(
            keys in proptest::collection::vec(
                proptest::collection::vec(0u8..8, 5..6), 1..100),
        ) {
            let mut tree = SignatureTree::new(5);
            for (i, key) in keys.iter().enumerate() {
                tree.insert(key, i as u32);
            }
            for key in &keys {
                let mut s = ProbeStats::default();
                prop_assert!(tree.get(key, &mut s).is_some());
                prop_assert!(s.nodes_visited <= 5 + 1);
            }
        }
    }
}
