//! # trajsim-art
//!
//! Sublinear candidate generation for the EDR filter chain: an adaptive
//! radix trie ([`SignatureTree`], after Leis et al.'s ART — Node4/16/48/
//! 256 fanouts, path compression, lazy leaf expansion) keyed on
//! quantized signatures, with postings lists of `(trajectory id, count)`
//! at the leaves.
//!
//! Two indexes share the trie:
//!
//! - [`QgramArtIndex`] keys each mean-value q-gram on its ε-grid cell;
//!   probing the `3^D` neighbouring cells of each query gram yields a
//!   sound upper bound on [`SortedMeans::match_count`] for Theorem 1's
//!   count filter — without merge-joining every candidate.
//! - [`HistogramArtIndex`] keys each non-empty histogram cell; probing
//!   accumulates a one-sided matching capacity per trajectory, giving a
//!   lower bound on EDR akin to the quick histogram filter — and proves
//!   trajectories it never touches are at *exactly* max-length distance.
//!
//! Probes report work through [`ProbeStats`] and the `art.nodes_visited`
//! / `art.postings_scanned` / `art.candidates` metrics counters. Per-
//! query state lives in a reusable [`ArtScratch`] with epoch-stamped
//! arrays, so a probe's cost scales with what it touches, not with the
//! dataset.
//!
//! [`SortedMeans::match_count`]: trajsim_qgram::SortedMeans::match_count

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod index;
pub mod tree;

pub use index::{
    ArtScratch, HistCandidate, HistogramArtIndex, QgramArtIndex, QuerySignature, CANDIDATES,
    NODES_VISITED, POSTINGS_SCANNED,
};
pub use tree::{Posting, ProbeStats, SignatureTree, TreeShape};
