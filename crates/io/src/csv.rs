//! Long-format CSV codec.

use crate::{IoError, Result};
use std::io::{BufRead, BufReader, Read, Write};
use trajsim_core::{Dataset, Point, Trajectory};

/// Writes a dataset in long format: header `traj_id,t,c0,..,c{D-1}`, one
/// sample per row. Implicit timestamps are written as their indices.
pub fn write_csv<const D: usize, W: Write>(mut w: W, dataset: &Dataset<D>) -> Result<()> {
    write!(w, "traj_id,t")?;
    for k in 0..D {
        write!(w, ",c{k}")?;
    }
    writeln!(w)?;
    for (id, t) in dataset.iter() {
        for (i, p) in t.iter().enumerate() {
            write!(w, "{id},{}", t.timestamp(i))?;
            for k in 0..D {
                write!(w, ",{}", p[k])?;
            }
            writeln!(w)?;
        }
    }
    Ok(())
}

/// Reads a long-format CSV into a dataset, validating the header and the
/// contiguity of trajectory ids. Trajectory ids are re-densified in order
/// of first appearance (so gaps are fine, interleaving is not).
///
/// # Errors
///
/// [`IoError::Csv`] with the offending line number for any malformed row.
pub fn read_csv<const D: usize, R: Read>(r: R) -> Result<Dataset<D>> {
    let mut lines = BufReader::new(r).lines().enumerate();
    // Header.
    let (_, header) = lines.next().ok_or_else(|| csv_err(1, "missing header"))?;
    let header = header?;
    let expected_cols = 2 + D;
    let got_cols = header.split(',').count();
    if got_cols != expected_cols {
        return Err(csv_err(
            1,
            format!(
                "header has {got_cols} columns, expected {expected_cols} (traj_id,t,c0..c{})",
                D - 1
            ),
        ));
    }

    let mut trajectories: Vec<Trajectory<D>> = Vec::new();
    let mut current_id: Option<String> = None;
    let mut seen_ids: Vec<String> = Vec::new();
    let mut points: Vec<Point<D>> = Vec::new();
    let mut timestamps: Vec<f64> = Vec::new();

    let mut flush = |points: &mut Vec<Point<D>>, timestamps: &mut Vec<f64>| -> Result<()> {
        if points.is_empty() {
            return Ok(());
        }
        let t = Trajectory::with_timestamps(std::mem::take(points), std::mem::take(timestamps))
            .map_err(|e| IoError::Csv {
                line: 0,
                reason: e.to_string(),
            })?;
        trajectories.push(t);
        Ok(())
    };

    for (idx, line) in lines {
        let line_no = idx + 1;
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != expected_cols {
            return Err(csv_err(
                line_no,
                format!("expected {expected_cols} fields, got {}", fields.len()),
            ));
        }
        let id = fields[0].trim().to_string();
        if current_id.as_deref() != Some(&id) {
            // New trajectory: ids must not reappear later.
            if seen_ids.contains(&id) {
                return Err(csv_err(
                    line_no,
                    format!("trajectory id {id:?} reappears non-contiguously"),
                ));
            }
            flush(&mut points, &mut timestamps)?;
            seen_ids.push(id.clone());
            current_id = Some(id);
        }
        let t: f64 = parse_field(fields[1], line_no, "t")?;
        timestamps.push(t);
        let mut coords = [0.0f64; D];
        for (k, c) in coords.iter_mut().enumerate() {
            *c = parse_field(fields[2 + k], line_no, "coordinate")?;
            if !c.is_finite() {
                return Err(csv_err(line_no, "non-finite coordinate"));
            }
        }
        points.push(Point::new(coords));
    }
    flush(&mut points, &mut timestamps)?;
    Ok(Dataset::new(trajectories))
}

fn parse_field(s: &str, line: usize, what: &str) -> Result<f64> {
    s.trim()
        .parse()
        .map_err(|_| csv_err(line, format!("bad {what} value {s:?}")))
}

fn csv_err(line: usize, reason: impl Into<String>) -> IoError {
    IoError::Csv {
        line,
        reason: reason.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use trajsim_core::Trajectory2;

    fn roundtrip(ds: &Dataset<2>) -> Dataset<2> {
        let mut buf = Vec::new();
        write_csv(&mut buf, ds).unwrap();
        read_csv(&buf[..]).unwrap()
    }

    #[test]
    fn roundtrips_a_small_dataset() {
        let ds = Dataset::new(vec![
            Trajectory2::from_xy(&[(1.0, 2.0), (3.0, 4.5)]),
            Trajectory2::from_xy(&[(-1.5, 0.0)]),
        ]);
        let back = roundtrip(&ds);
        assert_eq!(back.len(), 2);
        for (a, b) in ds.trajectories().iter().zip(back.trajectories()) {
            assert_eq!(a.points(), b.points());
        }
    }

    #[test]
    fn reads_handwritten_csv_with_blank_lines() {
        let text = "traj_id,t,c0,c1\nA,0,1.0,2.0\nA,1,3.0,4.0\n\nB,0,5.0,6.0\n";
        let ds: Dataset<2> = read_csv(text.as_bytes()).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.get(0).unwrap().len(), 2);
        assert_eq!(ds.get(1).unwrap().len(), 1);
        assert_eq!(ds.get(0).unwrap().timestamps(), Some(&[0.0, 1.0][..]));
    }

    #[test]
    fn rejects_malformed_rows_with_line_numbers() {
        let text = "traj_id,t,c0,c1\nA,0,1.0,2.0\nA,1,oops,4.0\n";
        match read_csv::<2, _>(text.as_bytes()) {
            Err(IoError::Csv { line, reason }) => {
                assert_eq!(line, 3);
                assert!(reason.contains("oops"));
            }
            other => panic!("expected csv error, got {other:?}"),
        }
        let text = "traj_id,t,c0,c1\nA,0,1.0\n";
        assert!(matches!(
            read_csv::<2, _>(text.as_bytes()),
            Err(IoError::Csv { line: 2, .. })
        ));
    }

    #[test]
    fn rejects_interleaved_ids() {
        let text = "traj_id,t,c0,c1\nA,0,1,1\nB,0,2,2\nA,1,3,3\n";
        assert!(matches!(
            read_csv::<2, _>(text.as_bytes()),
            Err(IoError::Csv { line: 4, .. })
        ));
    }

    #[test]
    fn rejects_wrong_dimension_header() {
        let text = "traj_id,t,c0\nA,0,1\n";
        assert!(matches!(
            read_csv::<2, _>(text.as_bytes()),
            Err(IoError::Csv { line: 1, .. })
        ));
    }

    #[test]
    fn rejects_non_finite_coordinates() {
        let text = "traj_id,t,c0,c1\nA,0,1.0,NaN\n";
        assert!(read_csv::<2, _>(text.as_bytes()).is_err());
    }

    #[test]
    fn empty_dataset_roundtrips() {
        let ds: Dataset<2> = Dataset::default();
        assert_eq!(roundtrip(&ds).len(), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// CSV roundtrips arbitrary finite datasets exactly (f64 Display
        /// is shortest-roundtrip in Rust).
        #[test]
        fn roundtrip_is_exact(
            trajs in proptest::collection::vec(
                proptest::collection::vec((-1e6..1e6f64, -1e6..1e6f64), 1..12),
                0..8,
            ),
        ) {
            let ds = Dataset::new(trajs.iter().map(|t| Trajectory2::from_xy(t)).collect());
            let back = roundtrip(&ds);
            prop_assert_eq!(back.len(), ds.len());
            for (a, b) in ds.trajectories().iter().zip(back.trajectories()) {
                prop_assert_eq!(a.points(), b.points());
            }
        }
    }
}
