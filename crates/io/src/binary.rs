//! Compact binary codec.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   b"TRAJ"            4 bytes
//! version u16                currently 1
//! dim     u16                D
//! count   u64                number of trajectories
//! per trajectory:
//!   len   u64                number of samples
//!   flags u8                 bit 0: explicit timestamps present
//!   points    len·D f64
//!   timestamps len f64       only if flag bit 0
//! ```

use crate::{IoError, Result};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io::{Read, Write};
use trajsim_core::{Dataset, Point, Trajectory};

const MAGIC: &[u8; 4] = b"TRAJ";
const VERSION: u16 = 1;
const FLAG_TIMESTAMPS: u8 = 1;

/// Serializes a dataset to the binary format.
pub fn write_binary<const D: usize, W: Write>(mut w: W, dataset: &Dataset<D>) -> Result<()> {
    let mut buf = BytesMut::with_capacity(16 + dataset.len() * 16);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u16_le(D as u16);
    buf.put_u64_le(dataset.len() as u64);
    for (_, t) in dataset.iter() {
        buf.put_u64_le(t.len() as u64);
        let has_ts = t.timestamps().is_some();
        buf.put_u8(if has_ts { FLAG_TIMESTAMPS } else { 0 });
        for p in t.iter() {
            for k in 0..D {
                buf.put_f64_le(p[k]);
            }
        }
        if let Some(ts) = t.timestamps() {
            for &v in ts {
                buf.put_f64_le(v);
            }
        }
    }
    w.write_all(&buf)?;
    Ok(())
}

/// Deserializes a dataset from the binary format.
///
/// # Errors
///
/// [`IoError::Binary`] for a bad magic, version, dimension mismatch, or
/// truncated payload.
pub fn read_binary<const D: usize, R: Read>(mut r: R) -> Result<Dataset<D>> {
    let mut raw = Vec::new();
    r.read_to_end(&mut raw)?;
    let mut buf = Bytes::from(raw);

    ensure(buf.remaining() >= 16, "truncated header")?;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    ensure(&magic == MAGIC, "bad magic")?;
    let version = buf.get_u16_le();
    ensure(version == VERSION, format!("unsupported version {version}"))?;
    let dim = buf.get_u16_le() as usize;
    ensure(
        dim == D,
        format!("dimension mismatch: file has {dim}, caller wants {D}"),
    )?;
    let count = buf.get_u64_le() as usize;

    let mut trajectories = Vec::with_capacity(count.min(1 << 20));
    for i in 0..count {
        ensure(buf.remaining() >= 9, format!("truncated at trajectory {i}"))?;
        let len = buf.get_u64_le() as usize;
        let flags = buf.get_u8();
        let has_ts = flags & FLAG_TIMESTAMPS != 0;
        let need = len
            .checked_mul(D)
            .and_then(|n| n.checked_mul(8))
            .and_then(|n| n.checked_add(if has_ts { len * 8 } else { 0 }))
            .ok_or_else(|| IoError::Binary("length overflow".into()))?;
        ensure(
            buf.remaining() >= need,
            format!("truncated body at trajectory {i}"),
        )?;
        let mut points = Vec::with_capacity(len);
        for _ in 0..len {
            let mut c = [0.0f64; D];
            for v in c.iter_mut() {
                *v = buf.get_f64_le();
            }
            points.push(Point::new(c));
        }
        let t = if has_ts {
            let mut ts = Vec::with_capacity(len);
            for _ in 0..len {
                ts.push(buf.get_f64_le());
            }
            Trajectory::with_timestamps(points, ts).map_err(|e| IoError::Binary(e.to_string()))?
        } else {
            Trajectory::new(points)
        };
        trajectories.push(t);
    }
    ensure(!buf.has_remaining(), "trailing bytes after payload")?;
    Ok(Dataset::new(trajectories))
}

fn ensure(cond: bool, reason: impl Into<String>) -> Result<()> {
    if cond {
        Ok(())
    } else {
        Err(IoError::Binary(reason.into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use trajsim_core::{Trajectory2, Trajectory3};

    fn roundtrip<const D: usize>(ds: &Dataset<D>) -> Dataset<D> {
        let mut buf = Vec::new();
        write_binary(&mut buf, ds).unwrap();
        read_binary(&buf[..]).unwrap()
    }

    #[test]
    fn roundtrips_including_timestamps() {
        let with_ts = Trajectory2::with_timestamps(
            vec![
                trajsim_core::Point2::xy(1.0, 2.0),
                trajsim_core::Point2::xy(3.0, 4.0),
            ],
            vec![10.5, 11.0],
        )
        .unwrap();
        let ds = Dataset::new(vec![with_ts, Trajectory2::from_xy(&[(0.0, -1.0)])]);
        let back = roundtrip(&ds);
        assert_eq!(back, ds);
        assert_eq!(back.get(0).unwrap().timestamps(), Some(&[10.5, 11.0][..]));
        assert_eq!(back.get(1).unwrap().timestamps(), None);
    }

    #[test]
    fn three_dimensional_roundtrip() {
        let ds: Dataset<3> = Dataset::new(vec![Trajectory3::from_coords([
            [1.0, 2.0, 3.0],
            [4.0, 5.0, 6.0],
        ])]);
        assert_eq!(roundtrip(&ds), ds);
    }

    #[test]
    fn empty_dataset_roundtrips() {
        let ds: Dataset<2> = Dataset::default();
        assert_eq!(roundtrip(&ds), ds);
    }

    #[test]
    fn rejects_corruption() {
        let ds = Dataset::new(vec![Trajectory2::from_xy(&[(1.0, 2.0)])]);
        let mut buf = Vec::new();
        write_binary(&mut buf, &ds).unwrap();
        // Bad magic.
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(matches!(
            read_binary::<2, _>(&bad[..]),
            Err(IoError::Binary(_))
        ));
        // Wrong dimension.
        assert!(matches!(
            read_binary::<3, _>(&buf[..]),
            Err(IoError::Binary(_))
        ));
        // Truncation.
        assert!(read_binary::<2, _>(&buf[..buf.len() - 4]).is_err());
        // Trailing garbage.
        let mut long = buf.clone();
        long.push(0);
        assert!(read_binary::<2, _>(&long[..]).is_err());
        // Unsupported version.
        let mut vbad = buf.clone();
        vbad[4] = 99;
        assert!(read_binary::<2, _>(&vbad[..]).is_err());
    }

    #[test]
    fn hostile_length_does_not_allocate() {
        // A header claiming a gigantic trajectory must fail cleanly, not
        // OOM: the length is validated against remaining bytes first.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"TRAJ");
        buf.extend_from_slice(&1u16.to_le_bytes());
        buf.extend_from_slice(&2u16.to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes()); // one trajectory
        buf.extend_from_slice(&u64::MAX.to_le_bytes()); // absurd length
        buf.push(0);
        assert!(read_binary::<2, _>(&buf[..]).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Binary roundtrips are bit-exact for arbitrary finite data.
        #[test]
        fn roundtrip_is_exact(
            trajs in proptest::collection::vec(
                proptest::collection::vec((-1e12..1e12f64, -1e12..1e12f64), 0..12),
                0..8,
            ),
        ) {
            let ds = Dataset::new(trajs.iter().map(|t| Trajectory2::from_xy(t)).collect());
            prop_assert_eq!(roundtrip(&ds), ds);
        }
    }
}
