//! # trajsim-io
//!
//! Persistence for trajectory data sets: a human-friendly long-format CSV
//! codec and a compact little-endian binary codec. Neither format appears
//! in the paper — they exist because a similarity-search library is only
//! adoptable if users can get their data *into* it.
//!
//! ## CSV
//!
//! Long format, one sample per row, with a header:
//!
//! ```csv
//! traj_id,t,c0,c1
//! 0,0,12.5,40.25
//! 0,1,13.0,40.5
//! 1,0,7.0,9.0
//! ```
//!
//! `traj_id` must be non-decreasing (samples of one trajectory are
//! contiguous); `t` is the timestamp; `c0..c{D-1}` are the coordinates.
//!
//! ## Binary
//!
//! `TRAJ` magic, format version, dimension, then length-prefixed
//! trajectories of little-endian `f64`s — safe to mmap-read later, cheap
//! to stream.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod binary;
mod csv;
mod error;

pub use binary::{read_binary, write_binary};
pub use csv::{read_csv, write_csv};
pub use error::IoError;

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, IoError>;
