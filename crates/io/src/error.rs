//! I/O error type.

use std::fmt;

/// Errors from reading or writing trajectory data.
#[derive(Debug)]
pub enum IoError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// Malformed CSV content, with the 1-based line number.
    Csv {
        /// Line where the problem was found.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// Malformed or unsupported binary content.
    Binary(String),
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o failure: {e}"),
            IoError::Csv { line, reason } => write!(f, "csv line {line}: {reason}"),
            IoError::Binary(reason) => write!(f, "binary format: {reason}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = IoError::Csv {
            line: 7,
            reason: "expected 4 fields".into(),
        };
        assert!(e.to_string().contains("line 7"));
        let e = IoError::Binary("bad magic".into());
        assert!(e.to_string().contains("bad magic"));
        let e: IoError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(e.to_string().contains("gone"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
