//! External evaluation metrics for clusterings and classifiers: the
//! quantitative companions to Table 1's "correctly partitions" yes/no and
//! Table 2's error rate.

/// The Rand index between two partitions of the same items: the fraction
/// of item pairs on which the partitions agree (together in both, or
/// apart in both). 1.0 means identical partitions (up to relabeling).
///
/// # Panics
///
/// Panics if the partitions have different lengths or fewer than two
/// items.
pub fn rand_index(a: &[usize], b: &[usize]) -> f64 {
    assert_eq!(a.len(), b.len(), "partitions must cover the same items");
    let n = a.len();
    assert!(n >= 2, "rand index needs at least two items");
    let mut agree = 0usize;
    let mut total = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            total += 1;
            if (a[i] == a[j]) == (b[i] == b[j]) {
                agree += 1;
            }
        }
    }
    agree as f64 / total as f64
}

/// Cluster purity: each cluster votes for its majority label; purity is
/// the fraction of items covered by their cluster's majority.
///
/// # Panics
///
/// Panics on length mismatch or empty input.
pub fn purity(assignment: &[usize], labels: &[usize]) -> f64 {
    assert_eq!(assignment.len(), labels.len(), "length mismatch");
    assert!(!assignment.is_empty(), "empty partition");
    let clusters = assignment.iter().max().unwrap() + 1;
    let classes = labels.iter().max().unwrap() + 1;
    let mut counts = vec![vec![0usize; classes]; clusters];
    for (&c, &l) in assignment.iter().zip(labels) {
        counts[c][l] += 1;
    }
    let covered: usize = counts
        .iter()
        .map(|row| row.iter().copied().max().unwrap_or(0))
        .sum();
    covered as f64 / assignment.len() as f64
}

/// A confusion matrix for label predictions: `matrix[actual][predicted]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<usize>,
}

impl ConfusionMatrix {
    /// Builds the matrix from parallel actual/predicted label slices.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch or if a label is `>= classes`.
    pub fn from_predictions(actual: &[usize], predicted: &[usize], classes: usize) -> Self {
        assert_eq!(actual.len(), predicted.len(), "length mismatch");
        let mut counts = vec![0usize; classes * classes];
        for (&a, &p) in actual.iter().zip(predicted) {
            assert!(a < classes && p < classes, "label out of range");
            counts[a * classes + p] += 1;
        }
        ConfusionMatrix { classes, counts }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Count of items with the given actual and predicted labels.
    pub fn get(&self, actual: usize, predicted: usize) -> usize {
        self.counts[actual * self.classes + predicted]
    }

    /// Total items.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Fraction predicted correctly (trace / total); 0 for an empty
    /// matrix.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: usize = (0..self.classes).map(|c| self.get(c, c)).sum();
        correct as f64 / total as f64
    }

    /// Per-class recall: `matrix[c][c] / Σ_p matrix[c][p]` (1.0 for
    /// classes with no actual items, by convention).
    pub fn recall(&self, class: usize) -> f64 {
        let row: usize = (0..self.classes).map(|p| self.get(class, p)).sum();
        if row == 0 {
            1.0
        } else {
            self.get(class, class) as f64 / row as f64
        }
    }

    /// Per-class precision: `matrix[c][c] / Σ_a matrix[a][c]` (1.0 for
    /// classes never predicted).
    pub fn precision(&self, class: usize) -> f64 {
        let col: usize = (0..self.classes).map(|a| self.get(a, class)).sum();
        if col == 0 {
            1.0
        } else {
            self.get(class, class) as f64 / col as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rand_index_extremes() {
        assert_eq!(rand_index(&[0, 0, 1, 1], &[1, 1, 0, 0]), 1.0); // relabeled
        assert_eq!(rand_index(&[0, 0, 1, 1], &[0, 0, 1, 1]), 1.0);
        // Perfectly disagreeing on co-membership: a together-pair vs all
        // apart etc.
        let r = rand_index(&[0, 0, 0, 0], &[0, 1, 2, 3]);
        assert_eq!(r, 0.0);
    }

    #[test]
    fn purity_measures_majorities() {
        // Cluster 0: labels {0, 0, 1}; cluster 1: labels {1}.
        assert!((purity(&[0, 0, 0, 1], &[0, 0, 1, 1]) - 0.75).abs() < 1e-12);
        assert_eq!(purity(&[0, 1], &[0, 1]), 1.0);
    }

    #[test]
    fn confusion_matrix_accounting() {
        let actual = [0, 0, 1, 1, 2];
        let predicted = [0, 1, 1, 1, 0];
        let m = ConfusionMatrix::from_predictions(&actual, &predicted, 3);
        assert_eq!(m.total(), 5);
        assert_eq!(m.get(0, 0), 1);
        assert_eq!(m.get(0, 1), 1);
        assert_eq!(m.get(1, 1), 2);
        assert_eq!(m.get(2, 0), 1);
        assert!((m.accuracy() - 3.0 / 5.0).abs() < 1e-12);
        assert!((m.recall(0) - 0.5).abs() < 1e-12);
        assert_eq!(m.recall(1), 1.0);
        assert_eq!(m.recall(2), 0.0);
        assert!((m.precision(0) - 0.5).abs() < 1e-12);
        assert!((m.precision(1) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.precision(2), 1.0); // never predicted
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn out_of_range_label_panics() {
        let _ = ConfusionMatrix::from_predictions(&[0], &[5], 3);
    }

    proptest! {
        /// The Rand index is symmetric, in [0, 1], and 1 against itself.
        #[test]
        fn rand_index_properties(
            a in proptest::collection::vec(0usize..4, 2..20),
            b in proptest::collection::vec(0usize..4, 2..20),
        ) {
            let n = a.len().min(b.len());
            let (a, b) = (&a[..n], &b[..n]);
            let r = rand_index(a, b);
            prop_assert!((0.0..=1.0).contains(&r));
            prop_assert_eq!(r, rand_index(b, a));
            prop_assert_eq!(rand_index(a, a), 1.0);
        }

        /// Purity is in (0, 1] and 1.0 when clusters equal labels.
        #[test]
        fn purity_properties(labels in proptest::collection::vec(0usize..4, 1..20)) {
            prop_assert_eq!(purity(&labels, &labels), 1.0);
            let lumped = vec![0usize; labels.len()];
            let p = purity(&lumped, &labels);
            prop_assert!(p > 0.0 && p <= 1.0);
        }
    }
}
