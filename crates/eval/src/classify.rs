//! Leave-one-out 1-NN classification — the Table 2 experiment ("the class
//! label of the chosen trajectory is predicted to be the class label of its
//! nearest neighbor ... The classification error rate is defined as the
//! ratio of the number of misses to the total number of trajectories",
//! §3.2, after Keogh & Kasetty \[21\]).

use trajsim_core::LabeledDataset;
use trajsim_distance::TrajectoryMeasure;

/// Predicts each trajectory's class as the class of its nearest neighbour
/// among all *other* trajectories, under `measure`. Returns the predicted
/// label per trajectory.
///
/// Ties in distance go to the earlier-indexed neighbour (deterministic and
/// matching a sequential argmin).
///
/// # Panics
///
/// Panics if the dataset has fewer than two trajectories (no neighbour to
/// leave in).
pub fn loo_predictions<const D: usize, M: TrajectoryMeasure<D> + ?Sized + Sync>(
    data: &LabeledDataset<D>,
    measure: &M,
) -> Vec<usize> {
    let n = data.len();
    assert!(n >= 2, "leave-one-out needs at least two trajectories");
    let trajectories = data.dataset().trajectories();
    // Compute each pair once; the matrix is symmetric.
    let matrix = crate::DistanceMatrix::from_trajectories(trajectories, measure);
    (0..n)
        .map(|i| {
            let (mut best_j, mut best_d) = (usize::MAX, f64::INFINITY);
            for j in 0..n {
                if j == i {
                    continue;
                }
                let d = matrix.get(i, j);
                if d < best_d {
                    (best_j, best_d) = (j, d);
                }
            }
            data.labels()[best_j]
        })
        .collect()
}

/// The leave-one-out 1-NN classification error rate: fraction of
/// trajectories whose predicted class differs from their label.
pub fn loo_error_rate<const D: usize, M: TrajectoryMeasure<D> + ?Sized + Sync>(
    data: &LabeledDataset<D>,
    measure: &M,
) -> f64 {
    let predictions = loo_predictions(data, measure);
    let misses = predictions
        .iter()
        .zip(data.labels())
        .filter(|(p, l)| p != l)
        .count();
    misses as f64 / data.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajsim_core::{Dataset, MatchThreshold, Trajectory2};
    use trajsim_distance::Measure;

    fn mk(offset: f64) -> Trajectory2 {
        Trajectory2::from_xy(&[(offset, 0.0), (offset + 1.0, 0.0), (offset + 2.0, 0.0)])
    }

    fn two_class_set() -> LabeledDataset<2> {
        LabeledDataset::new(
            Dataset::new(vec![
                mk(0.0),
                mk(0.2),
                mk(0.4),
                mk(50.0),
                mk(50.2),
                mk(50.4),
            ]),
            vec![0, 0, 0, 1, 1, 1],
            vec!["near".into(), "far".into()],
        )
        .unwrap()
    }

    #[test]
    fn separable_classes_have_zero_error() {
        let data = two_class_set();
        let eps = MatchThreshold::new(0.5).unwrap();
        assert_eq!(loo_error_rate(&data, &Measure::Edr { eps }), 0.0);
        assert_eq!(loo_error_rate(&data, &Measure::Erp), 0.0);
    }

    #[test]
    fn mislabeled_point_is_missed() {
        // Same geometry, but label one "near" trajectory as class 1: its
        // nearest neighbours are all class 0, so it must be a miss; its
        // former classmates still resolve correctly.
        let data = LabeledDataset::new(
            Dataset::new(vec![
                mk(0.0),
                mk(0.2),
                mk(0.4),
                mk(50.0),
                mk(50.2),
                mk(50.4),
            ]),
            vec![0, 0, 1, 1, 1, 1],
            vec!["near".into(), "far".into()],
        )
        .unwrap();
        let eps = MatchThreshold::new(0.5).unwrap();
        let predictions = loo_predictions(&data, &Measure::Edr { eps });
        assert_eq!(predictions[2], 0, "outlier label predicted from geometry");
        let err = loo_error_rate(&data, &Measure::Edr { eps });
        assert!((err - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn predictions_have_one_entry_per_trajectory() {
        let data = two_class_set();
        let eps = MatchThreshold::new(0.5).unwrap();
        assert_eq!(loo_predictions(&data, &Measure::Lcss { eps }).len(), 6);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn singleton_panics() {
        let data =
            LabeledDataset::new(Dataset::new(vec![mk(0.0)]), vec![0], vec!["only".into()]).unwrap();
        let eps = MatchThreshold::new(0.5).unwrap();
        let _ = loo_predictions(&data, &Measure::Edr { eps });
    }

    #[test]
    fn error_rate_is_within_unit_interval_for_all_measures() {
        let data = two_class_set();
        let eps = MatchThreshold::new(0.5).unwrap();
        for m in Measure::lineup(eps) {
            let e = loo_error_rate(&data, &m);
            assert!((0.0..=1.0).contains(&e));
        }
    }
}
