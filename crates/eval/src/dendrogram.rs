//! Dendrograms: the full agglomerative merge tree. The paper "draws
//! the dendrogram of each clustered result to see whether it correctly
//! partitions the trajectories" (§3.2); this module records the tree so
//! it can be cut at any level or rendered as text.

use crate::cluster::Linkage;
use crate::DistanceMatrix;

/// One merge step: clusters `a` and `b` (node ids) joined at `height`
/// (the linkage distance), forming node `n + step` for `n` leaves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Merge {
    /// First merged node (leaf id `< n`, or internal id `>= n`).
    pub a: usize,
    /// Second merged node.
    pub b: usize,
    /// Linkage distance at which the merge happened.
    pub height: f64,
    /// Number of leaves under the new node.
    pub size: usize,
}

/// A full agglomerative clustering tree over `n` items.
#[derive(Debug, Clone, PartialEq)]
pub struct Dendrogram {
    n: usize,
    merges: Vec<Merge>,
}

impl Dendrogram {
    /// Builds the complete merge tree (down to one cluster) under the
    /// given linkage, with the same deterministic tie-breaking as
    /// [`crate::agglomerative`].
    pub fn build(m: &DistanceMatrix, linkage: Linkage) -> Self {
        let n = m.len();
        // Active clusters: (node id, member leaves).
        let mut active: Vec<(usize, Vec<usize>)> = (0..n).map(|i| (i, vec![i])).collect();
        let mut merges = Vec::with_capacity(n.saturating_sub(1));
        let mut next_id = n;
        while active.len() > 1 {
            let (mut bi, mut bj, mut bd) = (0usize, 1usize, f64::INFINITY);
            for i in 0..active.len() {
                for j in (i + 1)..active.len() {
                    let d = linkage.cluster_distance(m, &active[i].1, &active[j].1);
                    if d < bd {
                        (bi, bj, bd) = (i, j, d);
                    }
                }
            }
            let (id_b, members_b) = active.swap_remove(bj);
            let (id_a, members_a) = std::mem::take(&mut active[bi]);
            let mut members = members_a;
            members.extend(members_b);
            merges.push(Merge {
                a: id_a,
                b: id_b,
                height: bd,
                size: members.len(),
            });
            active[bi] = (next_id, members);
            next_id += 1;
        }
        Dendrogram { n, merges }
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True iff there are no leaves.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The merge steps, in merge order (non-decreasing height for
    /// complete/single/average linkage on a fixed matrix is *not*
    /// guaranteed in general, but each entry records its own height).
    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// Cuts the tree into `k` clusters by undoing the last `k − 1`
    /// merges; returns each leaf's cluster assignment `0..k`. Equivalent
    /// to [`crate::agglomerative`] with the same matrix/linkage.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > n` for non-empty trees.
    pub fn cut(&self, k: usize) -> Vec<usize> {
        if self.n == 0 {
            assert!(k > 0, "cannot request zero clusters");
            return Vec::new();
        }
        assert!(
            k >= 1 && k <= self.n,
            "k = {k} out of range for n = {}",
            self.n
        );
        // Union-find over the first n - k merges.
        let mut parent: Vec<usize> = (0..self.n + self.merges.len()).collect();
        fn find(parent: &mut [usize], x: usize) -> usize {
            let mut root = x;
            while parent[root] != root {
                root = parent[root];
            }
            let mut cur = x;
            while parent[cur] != root {
                let next = parent[cur];
                parent[cur] = root;
                cur = next;
            }
            root
        }
        for (step, merge) in self.merges.iter().take(self.n - k).enumerate() {
            let new_node = self.n + step;
            let ra = find(&mut parent, merge.a);
            let rb = find(&mut parent, merge.b);
            parent[ra] = new_node;
            parent[rb] = new_node;
        }
        // Densify roots to 0..k.
        let mut root_ids: Vec<usize> = Vec::new();
        (0..self.n)
            .map(|leaf| {
                let r = find(&mut parent, leaf);
                match root_ids.iter().position(|&x| x == r) {
                    Some(idx) => idx,
                    None => {
                        root_ids.push(r);
                        root_ids.len() - 1
                    }
                }
            })
            .collect()
    }

    /// Renders the tree as indented ASCII, leaves labelled by index —
    /// the "draw the dendrogram" of §3.2 for terminals.
    pub fn render(&self) -> String {
        if self.n == 0 {
            return String::from("(empty)\n");
        }
        if self.merges.is_empty() {
            return String::from("leaf 0\n");
        }
        let root = self.n + self.merges.len() - 1;
        let mut out = String::new();
        self.render_node(root, 0, &mut out);
        out
    }

    fn render_node(&self, node: usize, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        if node < self.n {
            out.push_str(&format!("{pad}leaf {node}\n"));
        } else {
            let merge = &self.merges[node - self.n];
            out.push_str(&format!(
                "{pad}merge @ {:.3} ({} leaves)\n",
                merge.height, merge.size
            ));
            self.render_node(merge.a, depth + 1, out);
            self.render_node(merge.b, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{agglomerative, partition_matches_labels};
    use proptest::prelude::*;

    fn value_matrix(values: &[f64]) -> DistanceMatrix {
        DistanceMatrix::from_fn(values.len(), |i, j| (values[i] - values[j]).abs())
    }

    #[test]
    fn records_all_merges() {
        let m = value_matrix(&[0.0, 1.0, 10.0, 11.0]);
        let d = Dendrogram::build(&m, Linkage::Complete);
        assert_eq!(d.len(), 4);
        assert_eq!(d.merges().len(), 3);
        // The first two merges join the tight pairs at height 1; the last
        // joins everything at complete-linkage height 11.
        assert_eq!(d.merges()[0].height, 1.0);
        assert_eq!(d.merges()[1].height, 1.0);
        assert_eq!(d.merges()[2].height, 11.0);
        assert_eq!(d.merges()[2].size, 4);
    }

    #[test]
    fn cut_matches_agglomerative() {
        let m = value_matrix(&[0.0, 1.0, 2.0, 50.0, 51.0, 100.0]);
        let d = Dendrogram::build(&m, Linkage::Complete);
        for k in 1..=6 {
            let from_tree = d.cut(k);
            let direct = agglomerative(&m, k, Linkage::Complete);
            // Same partition up to relabeling: compare co-membership.
            for i in 0..6 {
                for j in 0..6 {
                    assert_eq!(
                        from_tree[i] == from_tree[j],
                        direct[i] == direct[j],
                        "k = {k}: items {i},{j} disagree"
                    );
                }
            }
        }
    }

    #[test]
    fn two_cluster_cut_separates_blobs() {
        let m = value_matrix(&[0.0, 1.0, 2.0, 100.0, 101.0, 102.0]);
        let d = Dendrogram::build(&m, Linkage::Complete);
        assert!(partition_matches_labels(&d.cut(2), &[0, 0, 0, 1, 1, 1]));
    }

    #[test]
    fn render_produces_a_tree() {
        let m = value_matrix(&[0.0, 1.0, 10.0]);
        let d = Dendrogram::build(&m, Linkage::Complete);
        let text = d.render();
        assert_eq!(text.matches("leaf").count(), 3);
        assert_eq!(text.matches("merge").count(), 2);
    }

    #[test]
    fn degenerate_sizes() {
        let d = Dendrogram::build(&DistanceMatrix::from_fn(0, |_, _| 0.0), Linkage::Single);
        assert!(d.is_empty());
        assert!(d.cut(1).is_empty());
        assert_eq!(d.render(), "(empty)\n");
        let d1 = Dendrogram::build(&DistanceMatrix::from_fn(1, |_, _| 0.0), Linkage::Single);
        assert_eq!(d1.cut(1), vec![0]);
        assert_eq!(d1.render(), "leaf 0\n");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Cutting at any k yields exactly k clusters covering all leaves.
        #[test]
        fn cut_yields_k_clusters(values in proptest::collection::vec(-100.0..100.0f64, 1..15), k_off in 0usize..15) {
            let m = value_matrix(&values);
            let d = Dendrogram::build(&m, Linkage::Average);
            let k = 1 + k_off % values.len();
            let cut = d.cut(k);
            prop_assert_eq!(cut.len(), values.len());
            let mut distinct = cut.clone();
            distinct.sort_unstable();
            distinct.dedup();
            prop_assert_eq!(distinct.len(), k);
        }
    }
}
