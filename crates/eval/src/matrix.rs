//! Symmetric pairwise distance matrices.

use trajsim_core::{Dataset, MatchThreshold, Trajectory, TrajectoryArena};
use trajsim_distance::{EdrWorkspace, QueryContext, TrajectoryMeasure};

/// A symmetric pairwise distance matrix over `n` items, stored as the
/// strict lower triangle in one flat buffer (the Performance Book's
/// flatten-your-nested-vecs advice; also halves memory).
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceMatrix {
    n: usize,
    // Entry (i, j) with i > j lives at tri_index(i, j).
    lower: Vec<f64>,
}

impl DistanceMatrix {
    /// Computes the full pairwise matrix of `measure` over `data` with one
    /// parallel task per matrix row (thread count per `trajsim-parallel`;
    /// the dynamic chunking evens out the triangle's skewed row lengths).
    pub fn compute<const D: usize, M: TrajectoryMeasure<D> + ?Sized + Sync>(
        data: &Dataset<D>,
        measure: &M,
    ) -> Self {
        Self::from_trajectories(data.trajectories(), measure)
    }

    /// Computes the EDR pairwise matrix through the allocation-free
    /// refine path: candidates live in a [`TrajectoryArena`] and are
    /// visited in layout order, the row trajectory is embedded once per
    /// row as a [`QueryContext`], and each worker reuses one pre-grown
    /// [`EdrWorkspace`] across all of its rows.
    pub fn edr_from_dataset<const D: usize>(data: &Dataset<D>, eps: MatchThreshold) -> Self {
        let n = data.len();
        let arena = TrajectoryArena::from_dataset(data);
        let row_ids: Vec<usize> = (1..n).collect();
        let rows: Vec<Vec<f64>> = trajsim_parallel::par_map_with(
            &row_ids,
            || EdrWorkspace::with_capacity(arena.max_len()),
            |ws, _, &i| {
                let ctx = QueryContext::new(arena.view(i), eps);
                (0..i).map(|j| ctx.edr(arena.view(j), ws) as f64).collect()
            },
        );
        DistanceMatrix {
            n,
            lower: rows.concat(),
        }
    }

    /// Computes the matrix from an arbitrary symmetric distance closure
    /// (called only for `i > j`), serially.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(n: usize, mut dist: F) -> Self {
        let mut lower = Vec::with_capacity(n.saturating_sub(1) * n / 2);
        for i in 1..n {
            for j in 0..i {
                lower.push(dist(i, j));
            }
        }
        DistanceMatrix { n, lower }
    }

    /// Computes the matrix over a slice of trajectories (parallel; see
    /// [`DistanceMatrix::compute`]).
    pub fn from_trajectories<const D: usize, M: TrajectoryMeasure<D> + ?Sized + Sync>(
        trajectories: &[Trajectory<D>],
        measure: &M,
    ) -> Self {
        let n = trajectories.len();
        // Row i of the strict lower triangle is (i, 0..i) — contiguous in
        // the flat buffer, so parallel rows concatenate back losslessly.
        let rows: Vec<Vec<f64>> = trajsim_parallel::par_for_map(n.saturating_sub(1), |r| {
            let i = r + 1;
            (0..i)
                .map(|j| measure.distance(&trajectories[i], &trajectories[j]))
                .collect()
        });
        DistanceMatrix {
            n,
            lower: rows.concat(),
        }
    }

    /// Number of items.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True iff the matrix covers no items.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The distance between items `i` and `j` (0 on the diagonal).
    ///
    /// # Panics
    ///
    /// Panics if `i >= n` or `j >= n`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index out of bounds");
        match i.cmp(&j) {
            std::cmp::Ordering::Equal => 0.0,
            std::cmp::Ordering::Greater => self.lower[Self::tri_index(i, j)],
            std::cmp::Ordering::Less => self.lower[Self::tri_index(j, i)],
        }
    }

    #[inline]
    fn tri_index(i: usize, j: usize) -> usize {
        debug_assert!(i > j);
        i * (i - 1) / 2 + j
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajsim_core::{MatchThreshold, Trajectory2};
    use trajsim_distance::Measure;

    #[test]
    fn from_fn_is_symmetric_with_zero_diagonal() {
        let m = DistanceMatrix::from_fn(4, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.len(), 4);
        for i in 0..4 {
            assert_eq!(m.get(i, i), 0.0);
            for j in 0..4 {
                assert_eq!(m.get(i, j), m.get(j, i));
            }
        }
        assert_eq!(m.get(2, 1), 21.0);
        assert_eq!(m.get(1, 2), 21.0);
    }

    #[test]
    fn computes_real_distances() {
        let data = Dataset::new(vec![
            Trajectory2::from_xy(&[(0.0, 0.0), (1.0, 1.0)]),
            Trajectory2::from_xy(&[(0.0, 0.0), (1.0, 1.0)]),
            Trajectory2::from_xy(&[(5.0, 5.0), (9.0, 9.0)]),
        ]);
        let eps = MatchThreshold::new(0.5).unwrap();
        let m = DistanceMatrix::compute(&data, &Measure::Edr { eps });
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(0, 2), 2.0);
    }

    #[test]
    fn edr_from_dataset_matches_the_generic_path() {
        let data = Dataset::new(vec![
            Trajectory2::from_xy(&[(0.0, 0.0), (1.0, 1.0)]),
            Trajectory2::from_xy(&[(0.0, 0.0), (1.0, 1.0), (2.0, 0.5)]),
            Trajectory2::from_xy(&[(5.0, 5.0), (9.0, 9.0)]),
            Trajectory2::from_xy(&[]),
        ]);
        let eps = MatchThreshold::new(0.5).unwrap();
        let generic = DistanceMatrix::compute(&data, &Measure::Edr { eps });
        let arena = DistanceMatrix::edr_from_dataset(&data, eps);
        assert_eq!(arena, generic);
    }

    #[test]
    fn empty_and_singleton() {
        let m = DistanceMatrix::from_fn(0, |_, _| unreachable!());
        assert!(m.is_empty());
        let m = DistanceMatrix::from_fn(1, |_, _| unreachable!());
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let m = DistanceMatrix::from_fn(2, |_, _| 1.0);
        let _ = m.get(0, 2);
    }
}
