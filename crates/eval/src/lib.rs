//! # trajsim-eval
//!
//! The efficacy experiments of §3.2 of Chen, Özsu, Oria (SIGMOD 2005),
//! which compare Euclidean distance, DTW, ERP, LCSS, and EDR on labelled
//! trajectory data:
//!
//! - **Table 1**: for every pair of classes, run "complete linkage"
//!   hierarchical clustering \[16\] down to two clusters and count the pairs
//!   that are partitioned correctly — [`cluster`] and
//!   [`correct_pair_partitions`].
//! - **Table 2**: "leave one out" 1-nearest-neighbour classification \[21\]:
//!   predict each trajectory's class as its nearest neighbour's class and
//!   report the error rate — [`classify`] and [`loo_error_rate`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod classify;
pub mod cluster;
mod dendrogram;
mod matrix;
mod metrics;

pub use classify::{loo_error_rate, loo_predictions};
pub use cluster::{agglomerative, correct_pair_partitions, partition_matches_labels, Linkage};
pub use dendrogram::{Dendrogram, Merge};
pub use matrix::DistanceMatrix;
pub use metrics::{purity, rand_index, ConfusionMatrix};
