//! Agglomerative hierarchical clustering with complete linkage — the
//! Table 1 experiment ("we take all possible pairs of classes and use the
//! 'complete linkage' hierarchy clustering algorithm \[16\], which was
//! reported to produce the best clustering results \[36\], to partition them
//! into two clusters", §3.2).

use crate::DistanceMatrix;
use trajsim_core::LabeledDataset;
use trajsim_distance::TrajectoryMeasure;

/// The linkage criterion used when merging clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Linkage {
    /// Complete linkage: cluster distance = max pairwise item distance.
    /// The paper's choice for Table 1.
    #[default]
    Complete,
    /// Single linkage: cluster distance = min pairwise item distance.
    /// Provided for ablation.
    Single,
    /// Average linkage (UPGMA): mean pairwise item distance.
    Average,
}

impl Linkage {
    /// Distance between two clusters given the item matrix.
    pub(crate) fn cluster_distance(self, m: &DistanceMatrix, a: &[usize], b: &[usize]) -> f64 {
        debug_assert!(!a.is_empty() && !b.is_empty());
        match self {
            Linkage::Complete => {
                let mut best = f64::NEG_INFINITY;
                for &i in a {
                    for &j in b {
                        best = best.max(m.get(i, j));
                    }
                }
                best
            }
            Linkage::Single => {
                let mut best = f64::INFINITY;
                for &i in a {
                    for &j in b {
                        best = best.min(m.get(i, j));
                    }
                }
                best
            }
            Linkage::Average => {
                let mut sum = 0.0;
                for &i in a {
                    for &j in b {
                        sum += m.get(i, j);
                    }
                }
                sum / (a.len() * b.len()) as f64
            }
        }
    }
}

/// Agglomerative clustering: starts with singletons and repeatedly merges
/// the closest pair of clusters (under `linkage`) until `k` clusters
/// remain. Returns the cluster assignment `0..k` of each item.
///
/// Ties are broken toward the lexicographically smallest cluster pair, so
/// the result is deterministic. The naive O(n³) merge loop is fine at the
/// experiment's scale (the Table 1 class pairs have ≤ 10 items).
///
/// # Panics
///
/// Panics if `k == 0` or `k > n` for a non-empty matrix.
pub fn agglomerative(m: &DistanceMatrix, k: usize, linkage: Linkage) -> Vec<usize> {
    let n = m.len();
    if n == 0 {
        assert!(k > 0, "cannot request zero clusters");
        return Vec::new();
    }
    assert!(k >= 1 && k <= n, "k = {k} out of range for n = {n}");
    let mut clusters: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    while clusters.len() > k {
        let (mut bi, mut bj, mut bd) = (0usize, 1usize, f64::INFINITY);
        for i in 0..clusters.len() {
            for j in (i + 1)..clusters.len() {
                let d = linkage.cluster_distance(m, &clusters[i], &clusters[j]);
                if d < bd {
                    (bi, bj, bd) = (i, j, d);
                }
            }
        }
        let merged = clusters.swap_remove(bj);
        clusters[bi].extend(merged);
    }
    let mut assignment = vec![0usize; n];
    for (c, members) in clusters.iter().enumerate() {
        for &i in members {
            assignment[i] = c;
        }
    }
    assignment
}

/// True iff a 2-cluster assignment reproduces the binary labels up to
/// cluster renaming — the "correctly partitions the trajectories"
/// criterion the paper applies to each dendrogram.
pub fn partition_matches_labels(assignment: &[usize], labels: &[usize]) -> bool {
    if assignment.len() != labels.len() {
        return false;
    }
    let direct = assignment.iter().zip(labels).all(|(a, l)| a == l);
    let flipped = assignment
        .iter()
        .zip(labels)
        .all(|(a, l)| (1 - a.min(&1)) == *l);
    direct || flipped
}

/// The Table 1 measurement: over all `C(classes, 2)` class pairs of `data`,
/// cluster each pair into two clusters with complete linkage under
/// `measure` and count how many pairs are partitioned correctly.
///
/// Returns `(correct, total_pairs)`.
pub fn correct_pair_partitions<const D: usize, M: TrajectoryMeasure<D> + ?Sized + Sync>(
    data: &LabeledDataset<D>,
    measure: &M,
) -> (usize, usize) {
    let k = data.num_classes();
    let mut correct = 0;
    let mut total = 0;
    for a in 0..k {
        for b in (a + 1)..k {
            total += 1;
            let pair = data.class_pair(a, b).expect("classes in range");
            let m = DistanceMatrix::compute(pair.dataset(), measure);
            let assignment = agglomerative(&m, 2, Linkage::Complete);
            if partition_matches_labels(&assignment, pair.labels()) {
                correct += 1;
            }
        }
    }
    (correct, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajsim_core::{Dataset, MatchThreshold, Trajectory2};
    use trajsim_distance::Measure;

    /// Matrix over 1-d values with |a - b| distances.
    fn value_matrix(values: &[f64]) -> DistanceMatrix {
        DistanceMatrix::from_fn(values.len(), |i, j| (values[i] - values[j]).abs())
    }

    #[test]
    fn two_obvious_blobs_separate() {
        // Items 0-2 near 0, items 3-5 near 100.
        let m = value_matrix(&[0.0, 1.0, 2.0, 100.0, 101.0, 102.0]);
        let a = agglomerative(&m, 2, Linkage::Complete);
        assert!(partition_matches_labels(&a, &[0, 0, 0, 1, 1, 1]));
    }

    #[test]
    fn k_equals_n_gives_singletons() {
        let m = value_matrix(&[0.0, 5.0, 10.0]);
        let a = agglomerative(&m, 3, Linkage::Complete);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3);
    }

    #[test]
    fn k_equals_one_merges_everything() {
        let m = value_matrix(&[0.0, 5.0, 100.0]);
        let a = agglomerative(&m, 1, Linkage::Complete);
        assert!(a.iter().all(|&c| c == 0));
    }

    #[test]
    fn complete_vs_single_linkage_differ_on_chains() {
        // A chain 0-1-2-...: single linkage happily follows it; complete
        // linkage prefers compact groups. With two tight pairs bridged by a
        // midpoint, the assignments differ in structure.
        let m = value_matrix(&[0.0, 1.0, 2.0, 3.0]);
        let complete = agglomerative(&m, 2, Linkage::Complete);
        assert!(partition_matches_labels(&complete, &[0, 0, 1, 1]));
        let avg = agglomerative(&m, 2, Linkage::Average);
        assert!(partition_matches_labels(&avg, &[0, 0, 1, 1]));
    }

    #[test]
    fn empty_and_degenerate_cases() {
        let m = DistanceMatrix::from_fn(0, |_, _| unreachable!());
        assert!(agglomerative(&m, 1, Linkage::Complete).is_empty());
        let m1 = DistanceMatrix::from_fn(1, |_, _| unreachable!());
        assert_eq!(agglomerative(&m1, 1, Linkage::Complete), vec![0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn k_zero_panics_for_non_empty() {
        let m = value_matrix(&[0.0, 1.0]);
        let _ = agglomerative(&m, 0, Linkage::Complete);
    }

    #[test]
    fn partition_matching_handles_renaming() {
        assert!(partition_matches_labels(&[1, 1, 0], &[0, 0, 1]));
        assert!(partition_matches_labels(&[0, 0, 1], &[0, 0, 1]));
        assert!(!partition_matches_labels(&[0, 1, 0], &[0, 0, 1]));
        assert!(!partition_matches_labels(&[0, 0], &[0, 0, 1]));
    }

    #[test]
    fn correct_pair_partitions_on_separable_classes() {
        // Three classes of 1-d trajectories at wildly different offsets —
        // every pair is trivially separable under EDR.
        let mk = |offset: f64| {
            Trajectory2::from_xy(&[
                (offset, offset),
                (offset + 1.0, offset),
                (offset + 2.0, offset),
            ])
        };
        let ds = Dataset::new(vec![
            mk(0.0),
            mk(0.1),
            mk(50.0),
            mk(50.1),
            mk(100.0),
            mk(100.1),
        ]);
        let ld = LabeledDataset::new(
            ds,
            vec![0, 0, 1, 1, 2, 2],
            vec!["a".into(), "b".into(), "c".into()],
        )
        .unwrap();
        let eps = MatchThreshold::new(0.5).unwrap();
        let (correct, total) = correct_pair_partitions(&ld, &Measure::Edr { eps });
        assert_eq!(total, 3);
        assert_eq!(correct, 3);
    }
}
