//! The Table 2 corruption model: interpolated Gaussian noise over 10–20 %
//! of a trajectory's length plus local time shifting, after the program of
//! Vlachos et al. \[37\] used by the paper ("we add to [the] data sets
//! interpolated Gaussian noise (about 10-20% of the length of trajectories)
//! and local time shifting", §3.2).

use rand::Rng;
use rand_distr::{Distribution, Normal};
use trajsim_core::{Dataset, LabeledDataset, Point2, Trajectory2};

/// Parameters of the noise + local-time-shifting corruption.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorruptionConfig {
    /// Fraction range of the trajectory length covered by noise
    /// (paper: 10–20 %).
    pub noise_frac: (f64, f64),
    /// Standard deviation of the injected Gaussian noise, in multiples of
    /// the trajectory's own per-dimension standard deviation, so the noise
    /// is outlier-scale for any data range.
    pub noise_sigma_factor: f64,
    /// Maximum fraction of the length a local segment is stretched or
    /// compressed by during time shifting.
    pub shift_frac: f64,
}

impl Default for CorruptionConfig {
    /// The paper's regime: noise covering 10–20 % of the length, noise σ of
    /// 5× the data σ (clearly outliers), shifts up to 20 % of the length.
    fn default() -> Self {
        CorruptionConfig {
            noise_frac: (0.10, 0.20),
            noise_sigma_factor: 5.0,
            shift_frac: 0.20,
        }
    }
}

/// Applies local time shifting followed by interpolated Gaussian noise to
/// one trajectory, preserving its length.
///
/// *Local time shifting* re-samples a random contiguous segment at a
/// different rate (stretching it) while compressing the remainder, so the
/// same path is traversed with locally shifted timing. *Interpolated
/// Gaussian noise* then perturbs a random contiguous run of 10–20 % of the
/// elements with zero-mean Gaussian offsets whose magnitude ramps up and
/// down (interpolated) so the corrupted segment connects smoothly at its
/// ends — matching the effect of Vlachos's generator.
///
/// Empty and single-element trajectories are returned unchanged.
pub fn corrupt<R: Rng + ?Sized>(
    rng: &mut R,
    t: &Trajectory2,
    cfg: &CorruptionConfig,
) -> Trajectory2 {
    if t.len() < 2 {
        return t.clone();
    }
    let shifted = local_time_shift(rng, t, cfg.shift_frac);
    if cfg.noise_sigma_factor <= 0.0 || cfg.noise_frac.1 <= 0.0 {
        return shifted;
    }
    add_interpolated_noise(rng, &shifted, cfg)
}

/// Corrupts every trajectory of a labelled dataset, preserving labels —
/// the per-seed data sets of the Table 2 experiment ("we use each raw data
/// set as a seed and generate 50 distinct data sets that include noise and
/// time shifting").
pub fn corrupt_dataset<R: Rng + ?Sized>(
    rng: &mut R,
    data: &LabeledDataset<2>,
    cfg: &CorruptionConfig,
) -> LabeledDataset<2> {
    let trajectories = data
        .dataset()
        .trajectories()
        .iter()
        .map(|t| corrupt(rng, t, cfg))
        .collect();
    LabeledDataset::new(
        Dataset::new(trajectories),
        data.labels().to_vec(),
        data.class_names().to_vec(),
    )
    .expect("corruption preserves lengths and labels")
}

/// Stretches a random segment and compresses the rest via monotone
/// re-sampling; output length equals input length.
fn local_time_shift<R: Rng + ?Sized>(rng: &mut R, t: &Trajectory2, shift_frac: f64) -> Trajectory2 {
    let n = t.len();
    if shift_frac <= 0.0 || n < 3 {
        return t.clone();
    }
    // Pick a segment [a, b) of the *source* index space and a stretch
    // factor; build a piecewise-linear monotone map from output position to
    // source position that over-samples the segment.
    let seg_len = ((n as f64) * rng.gen_range(0.1..0.3f64)).max(2.0) as usize;
    let a = rng.gen_range(0..n - seg_len.min(n - 1));
    let b = (a + seg_len).min(n - 1);
    let stretch = 1.0 + rng.gen_range(0.0..shift_frac) * if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
    // Weights: inside the segment, each source step takes `stretch` output
    // steps; outside, 1. Normalize to keep the output length at n.
    let mut weights = vec![1.0f64; n - 1];
    for w in weights.iter_mut().take(b).skip(a) {
        *w = stretch.max(0.2);
    }
    let total: f64 = weights.iter().sum();
    // Cumulative output positions of each source index, scaled to [0, n-1].
    let mut cum = Vec::with_capacity(n);
    cum.push(0.0);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total * (n - 1) as f64;
        cum.push(acc);
    }
    // Invert the map: for each output index i, find the source position
    // whose cumulative output position equals i.
    let mut points = Vec::with_capacity(n);
    let mut src = 0usize;
    for i in 0..n {
        let target = i as f64;
        while src + 1 < n - 1 && cum[src + 1] < target {
            src += 1;
        }
        let span = (cum[src + 1] - cum[src]).max(f64::MIN_POSITIVE);
        let frac = ((target - cum[src]) / span).clamp(0.0, 1.0);
        let (p, q) = (t[src], t[src + 1]);
        points.push(Point2::xy(
            p.x() + (q.x() - p.x()) * frac,
            p.y() + (q.y() - p.y()) * frac,
        ));
    }
    Trajectory2::new(points)
}

/// Adds a smoothly ramped run of Gaussian outliers covering a
/// `cfg.noise_frac` fraction of the elements.
fn add_interpolated_noise<R: Rng + ?Sized>(
    rng: &mut R,
    t: &Trajectory2,
    cfg: &CorruptionConfig,
) -> Trajectory2 {
    let n = t.len();
    let (lo, hi) = cfg.noise_frac;
    let frac = if hi > lo { rng.gen_range(lo..hi) } else { lo };
    let run = ((n as f64 * frac).round() as usize).clamp(1, n);
    let start = rng.gen_range(0..=n - run);
    let sd = t.std_dev().expect("non-empty");
    let sigma = (sd[0].max(sd[1]) * cfg.noise_sigma_factor).max(1e-6);
    let noise = Normal::new(0.0, sigma).expect("finite sigma");
    let mut points: Vec<Point2> = t.points().to_vec();
    for (k, p) in points.iter_mut().skip(start).take(run).enumerate() {
        // Triangular ramp: full noise mid-run, tapering to ~0 at the ends,
        // which is the "interpolated" part — the noisy burst blends in.
        let pos = (k as f64 + 0.5) / run as f64;
        let ramp = 1.0 - (2.0 * pos - 1.0).abs();
        *p = Point2::xy(
            p.x() + noise.sample(rng) * ramp,
            p.y() + noise.sample(rng) * ramp,
        );
    }
    Trajectory2::new(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{seeded_rng, smooth_template};
    use proptest::prelude::*;
    use trajsim_core::Dataset;

    const BOUNDS: (f64, f64, f64, f64) = (0.0, 100.0, 0.0, 100.0);

    fn sample_traj(seed: u64, len: usize) -> Trajectory2 {
        smooth_template(&mut seeded_rng(seed), 5, len, BOUNDS)
    }

    #[test]
    fn corruption_preserves_length() {
        let t = sample_traj(1, 120);
        let c = corrupt(&mut seeded_rng(2), &t, &CorruptionConfig::default());
        assert_eq!(c.len(), t.len());
        assert!(c.is_finite());
    }

    #[test]
    fn corruption_actually_changes_points() {
        let t = sample_traj(3, 100);
        let c = corrupt(&mut seeded_rng(4), &t, &CorruptionConfig::default());
        let moved = t
            .iter()
            .zip(c.iter())
            .filter(|(a, b)| a.dist(b) > 1e-9)
            .count();
        assert!(moved > 10, "only {moved} points moved");
    }

    #[test]
    fn corruption_is_deterministic_per_seed() {
        let t = sample_traj(5, 80);
        let cfg = CorruptionConfig::default();
        let a = corrupt(&mut seeded_rng(6), &t, &cfg);
        let b = corrupt(&mut seeded_rng(6), &t, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn tiny_trajectories_pass_through() {
        let cfg = CorruptionConfig::default();
        let empty = Trajectory2::default();
        assert_eq!(corrupt(&mut seeded_rng(0), &empty, &cfg), empty);
        let single = Trajectory2::from_xy(&[(1.0, 2.0)]);
        assert_eq!(corrupt(&mut seeded_rng(0), &single, &cfg), single);
    }

    #[test]
    fn noise_is_outlier_scale_but_localized() {
        let t = sample_traj(7, 200);
        let cfg = CorruptionConfig {
            shift_frac: 0.0, // isolate the noise component
            ..CorruptionConfig::default()
        };
        let c = corrupt(&mut seeded_rng(8), &t, &cfg);
        let sd = t.std_dev().unwrap();
        let scale = sd[0].max(sd[1]);
        let big_moves = t
            .iter()
            .zip(c.iter())
            .filter(|(a, b)| a.dist(b) > scale)
            .count();
        // Noise covers 10-20% of 200 = 20..40 points; the triangular ramp
        // means only the middle of the run moves by >1 data sigma.
        assert!(big_moves >= 2, "expected some outliers, got {big_moves}");
        assert!(big_moves <= 40, "noise not localized: {big_moves} outliers");
    }

    #[test]
    fn corrupt_dataset_preserves_labels_and_sizes() {
        let ds = Dataset::new(vec![sample_traj(10, 60), sample_traj(11, 70)]);
        let ld = LabeledDataset::new(ds, vec![0, 1], vec!["a".into(), "b".into()]).unwrap();
        let c = corrupt_dataset(&mut seeded_rng(12), &ld, &CorruptionConfig::default());
        assert_eq!(c.labels(), ld.labels());
        assert_eq!(c.len(), ld.len());
        assert_eq!(c.dataset().get(0).unwrap().len(), 60);
        assert_eq!(c.dataset().get(1).unwrap().len(), 70);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Corruption never changes lengths and never produces non-finite
        /// coordinates, for any seed and length.
        #[test]
        fn corruption_well_formed(seed in 0u64..300, len in 2usize..150) {
            let t = sample_traj(seed, len);
            let c = corrupt(&mut seeded_rng(seed + 1), &t, &CorruptionConfig::default());
            prop_assert_eq!(c.len(), len);
            prop_assert!(c.is_finite());
        }

        /// Time shifting alone keeps points on (a resampling of) the
        /// original path: every shifted point lies within the bounding box
        /// of the original trajectory.
        #[test]
        fn time_shift_stays_on_path(seed in 0u64..100) {
            let t = sample_traj(seed, 80);
            let cfg = CorruptionConfig {
                noise_frac: (0.0, 0.0),
                noise_sigma_factor: 0.0,
                shift_frac: 0.3,
            };
            let c = corrupt(&mut seeded_rng(seed + 7), &t, &cfg);
            let (mut x0, mut x1, mut y0, mut y1) =
                (f64::INFINITY, f64::NEG_INFINITY, f64::INFINITY, f64::NEG_INFINITY);
            for p in t.iter() {
                x0 = x0.min(p.x()); x1 = x1.max(p.x());
                y0 = y0.min(p.y()); y1 = y1.max(p.y());
            }
            for p in c.iter() {
                prop_assert!(p.x() >= x0 - 1e-9 && p.x() <= x1 + 1e-9);
                prop_assert!(p.y() >= y0 - 1e-9 && p.y() <= y1 + 1e-9);
            }
        }
    }
}
