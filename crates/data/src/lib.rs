//! # trajsim-data
//!
//! Deterministic synthetic trajectory data sets with the same *statistical
//! shape* as the benchmarks used in Chen, Özsu, Oria (SIGMOD 2005) — see
//! `DESIGN.md` §4 for the substitution rationale. The originals
//! (Cameramouse, the UCI ASL signs, the Kungfu/Slip motion captures, NHL
//! player tracks, and Vlachos's mixed set) are not redistributable, and the
//! paper's efficiency results depend on trajectory lengths, database size,
//! and cluster structure rather than on the semantic content of the
//! motions, so shape-preserving synthesis keeps every comparison
//! meaningful.
//!
//! Everything takes an explicit [`rand::Rng`], and the convenience
//! constructors take a `u64` seed, so data sets are reproducible
//! run-to-run.
//!
//! - [`cm_like`] / [`asl_like`] — small labelled sets for the efficacy
//!   experiments (Tables 1–2),
//! - [`kungfu_like`] / [`slip_like`] — long fixed-length motion databases
//!   (Figures 7–10),
//! - [`nhl_like`] / [`mixed_like`] / [`random_walk_set`] — the large
//!   variable-length retrieval databases (Table 3, Figures 11–13),
//! - [`corrupt`] and [`CorruptionConfig`] — the interpolated-Gaussian-noise
//!   and local-time-shifting corruption applied for Table 2 (after
//!   Vlachos's program \[37\]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod corrupt;
mod labeled;
mod motion;
mod template;
mod walk;

pub use corrupt::{corrupt, corrupt_dataset, CorruptionConfig};
pub use labeled::{asl_like, asl_retrieval_like, cm_like, labeled_set, LabeledSetConfig};
pub use motion::{kungfu_like, mixed_like, nhl_like, random_walk_db, slip_like};
pub use template::{instance_of, smooth_template};
pub use walk::{
    random_walk, random_walk_from, random_walk_set, random_walk_set_spread, LengthDistribution,
};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Creates the deterministic RNG used by every seeded convenience
/// constructor in this crate.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}
