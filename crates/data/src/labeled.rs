//! Labelled benchmark sets for the efficacy experiments (§3.2): synthetic
//! stand-ins for the Cameramouse and ASL data.

use crate::seeded_rng;
use crate::template::{instance_of, smooth_template};
use rand::Rng;
use trajsim_core::{Dataset, LabeledDataset};

/// Configuration of a template-based labelled set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabeledSetConfig {
    /// Number of classes (distinct underlying motions).
    pub classes: usize,
    /// Instances generated per class.
    pub per_class: usize,
    /// Inclusive range instance lengths are drawn from.
    pub len_range: (usize, usize),
    /// Waypoints per template — more waypoints = more intricate motion.
    pub waypoints: usize,
    /// Monotone time-warp strength applied to each instance (local time
    /// shifting, 0..1).
    pub warp_strength: f64,
    /// Per-point Gaussian jitter σ, in the template coordinate units.
    pub jitter_sigma: f64,
    /// Fraction (0..0.5) of the template that may be trimmed from either
    /// end of each instance — different recordings of the same motion
    /// rarely start and stop at the same instant, and this is what defeats
    /// sliding-window Euclidean alignment in Table 1/2.
    pub trim_frac: f64,
    /// Number of *base shapes* the class templates derive from. Equal to
    /// `classes` (or 0, meaning "independent") every class is its own
    /// shape; smaller values create sibling classes that are perturbations
    /// of a shared base — confusable pairs, like visually similar sign
    /// language signs.
    pub base_shapes: usize,
}

/// Generates a labelled set: `classes` smooth templates, each sampled
/// `per_class` times under local time shifting and jitter.
///
/// # Panics
///
/// Panics if `classes == 0`, `per_class == 0`, or the length range is
/// inverted or contains 0.
pub fn labeled_set<R: Rng + ?Sized>(rng: &mut R, cfg: &LabeledSetConfig) -> LabeledDataset<2> {
    assert!(cfg.classes > 0 && cfg.per_class > 0, "empty configuration");
    assert!(
        0 < cfg.len_range.0 && cfg.len_range.0 <= cfg.len_range.1,
        "invalid length range"
    );
    const BOUNDS: (f64, f64, f64, f64) = (0.0, 100.0, 0.0, 100.0);
    let template_len = cfg.len_range.1.max(32);
    let trim = cfg.trim_frac.clamp(0.0, 0.5);
    // Base shapes: classes derived from a shared base are smooth
    // perturbations of it, producing confusable class pairs.
    let n_bases = if cfg.base_shapes == 0 {
        cfg.classes
    } else {
        cfg.base_shapes.min(cfg.classes)
    };
    let bases: Vec<trajsim_core::Trajectory2> = (0..n_bases)
        .map(|_| smooth_template(rng, cfg.waypoints, template_len, BOUNDS))
        .collect();
    let mut trajectories = Vec::with_capacity(cfg.classes * cfg.per_class);
    let mut labels = Vec::with_capacity(cfg.classes * cfg.per_class);
    let mut names = Vec::with_capacity(cfg.classes);
    for class in 0..cfg.classes {
        names.push(format!("class-{class}"));
        let base = &bases[class % n_bases];
        let template = if n_bases == cfg.classes {
            base.clone()
        } else if class < n_bases {
            // First sibling of each base: the base itself.
            base.clone()
        } else {
            // Later siblings: the base with an inserted detour stroke — the
            // classes share a long common subsequence and differ by a gap,
            // the regime where LCSS's gap-blindness costs accuracy and
            // EDR's gap penalty pays off (the paper's S-vs-P example at
            // class level).
            with_detour(rng, base, template_len)
        };
        for _ in 0..cfg.per_class {
            let len = rng.gen_range(cfg.len_range.0..=cfg.len_range.1);
            // Trim a random amount off both ends of the template span.
            let n = template.len();
            let max_cut = ((n as f64) * trim) as usize;
            let start = rng.gen_range(0..=max_cut);
            let end = n - rng.gen_range(0..=max_cut);
            let span = trajsim_core::Trajectory2::new(template.points()[start..end].to_vec());
            trajectories.push(instance_of(
                rng,
                &span,
                len,
                cfg.warp_strength,
                cfg.jitter_sigma,
            ));
            labels.push(class);
        }
    }
    LabeledDataset::new(Dataset::new(trajectories), labels, names)
        .expect("construction is internally consistent")
}

/// Inserts a smooth out-and-back detour stroke into a base shape and
/// resamples to `out_len` — how a *sibling class* differs from its base.
fn with_detour<R: Rng + ?Sized>(
    rng: &mut R,
    base: &trajsim_core::Trajectory2,
    out_len: usize,
) -> trajsim_core::Trajectory2 {
    use std::f64::consts::{PI, TAU};
    let n = base.len();
    let at = rng.gen_range(n / 5..4 * n / 5);
    let detour_len = rng.gen_range(n / 6..n / 4).max(2);
    let anchor = base[at];
    let angle = rng.gen_range(0.0..TAU);
    let radius = rng.gen_range(15.0..30.0);
    let detour = (0..detour_len).map(|j| {
        let u = j as f64 / (detour_len - 1) as f64;
        let out = (u * PI).sin() * radius; // out and back to the anchor
        let swing = angle + (u - 0.5) * 0.8;
        trajsim_core::Point2::xy(
            anchor.x() + out * swing.cos(),
            anchor.y() + out * swing.sin(),
        )
    });
    let mut pts = base.points()[..at].to_vec();
    pts.extend(detour);
    pts.extend_from_slice(&base.points()[at..]);
    instance_of(rng, &trajsim_core::Trajectory2::new(pts), out_len, 0.0, 0.0)
}

/// A Cameramouse-like set (CM, \[11\]): "15 trajectories of 5 words (3 for
/// each word) obtained by tracking the finger tips of people as they
/// 'write' various words". Five intricate word shapes; instances are
/// heavily time-warped and trimmed (people never write at the same speed
/// twice), which is exactly what breaks Euclidean alignment in Table 1.
pub fn cm_like(seed: u64) -> LabeledDataset<2> {
    let mut rng = seeded_rng(seed);
    labeled_set(
        &mut rng,
        &LabeledSetConfig {
            classes: 5,
            per_class: 3,
            len_range: (90, 140),
            waypoints: 12, // "writing a word" is an intricate stroke
            warp_strength: 0.95,
            jitter_sigma: 1.0,
            trim_frac: 0.25,
            base_shapes: 0,
        },
    )
}

fn asl_config(per_class: usize) -> LabeledSetConfig {
    LabeledSetConfig {
        classes: 10,
        per_class,
        len_range: (60, 140),
        waypoints: 8,
        warp_strength: 0.9,
        jitter_sigma: 2.5,
        trim_frac: 0.15,
        // Ten signs derived from five base hand shapes: sibling classes
        // are confusable, leaving the error headroom Table 1/2 show for
        // ASL even under the elastic measures.
        base_shapes: 5,
    }
}

/// An ASL-like set (UCI KDD): "a 10 class data set with 5 trajectories per
/// class" of Australian Sign Language signs, lengths 60–140 (§5.1).
pub fn asl_like(seed: u64) -> LabeledDataset<2> {
    let mut rng = seeded_rng(seed);
    labeled_set(&mut rng, &asl_config(5))
}

/// The combined ASL retrieval database of §5.1: "this data set combines all
/// the trajectories of ten word classes into one data set", 710
/// trajectories with lengths 60–140. We reach 710 by generating 71
/// instances per class.
pub fn asl_retrieval_like(seed: u64) -> Dataset<2> {
    let mut rng = seeded_rng(seed);
    labeled_set(&mut rng, &asl_config(71)).dataset().clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajsim_core::{max_std_dev, MatchThreshold};
    use trajsim_distance::edr;

    #[test]
    fn cm_like_shape_matches_paper() {
        let cm = cm_like(42);
        assert_eq!(cm.len(), 15);
        assert_eq!(cm.num_classes(), 5);
        for c in 0..5 {
            assert_eq!(cm.members_of(c).len(), 3);
        }
        for (_, t) in cm.dataset().iter() {
            assert!((90..=140).contains(&t.len()));
            assert!(t.is_finite());
        }
    }

    #[test]
    fn asl_like_shape_matches_paper() {
        let asl = asl_like(42);
        assert_eq!(asl.len(), 50);
        assert_eq!(asl.num_classes(), 10);
        for (_, t) in asl.dataset().iter() {
            assert!((60..=140).contains(&t.len()));
        }
    }

    #[test]
    fn asl_retrieval_set_has_710_trajectories() {
        let ds = asl_retrieval_like(1);
        assert_eq!(ds.len(), 710);
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(cm_like(7), cm_like(7));
        assert_ne!(cm_like(7), cm_like(8));
    }

    #[test]
    fn classes_are_separable_under_edr() {
        // The whole point of the synthetic stand-ins: same-class instances
        // must be closer (under the paper's measure and ε rule) than
        // cross-class ones, on average — otherwise Tables 1-2 would be
        // meaningless.
        let cm = cm_like(3).normalize();
        let eps =
            MatchThreshold::quarter_of_max_std(max_std_dev(cm.dataset().trajectories()).unwrap())
                .unwrap();
        let (mut intra, mut inter) = (Vec::new(), Vec::new());
        for i in 0..cm.len() {
            for j in (i + 1)..cm.len() {
                let d = edr(
                    cm.dataset().get(i).unwrap(),
                    cm.dataset().get(j).unwrap(),
                    eps,
                ) as f64;
                if cm.labels()[i] == cm.labels()[j] {
                    intra.push(d);
                } else {
                    inter.push(d);
                }
            }
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            avg(&intra) < avg(&inter),
            "intra {} !< inter {}",
            avg(&intra),
            avg(&inter)
        );
    }

    #[test]
    #[should_panic(expected = "empty configuration")]
    fn zero_classes_panics() {
        let mut rng = seeded_rng(0);
        let _ = labeled_set(
            &mut rng,
            &LabeledSetConfig {
                classes: 0,
                per_class: 1,
                len_range: (10, 20),
                waypoints: 4,
                warp_strength: 0.1,
                jitter_sigma: 0.1,
                trim_frac: 0.0,
                base_shapes: 0,
            },
        );
    }
}
