//! Random-walk trajectory generators (the RandU / RandN sets of §5.2 and
//! the large Randomwalk set of §5.4, following [6, 19]).

use rand::Rng;
use rand_distr::{Distribution, Normal};
use trajsim_core::{Dataset, Point2, Trajectory2};

/// How trajectory lengths are drawn for a random-walk set.
///
/// §5.2 generates "two random walk data sets with different lengths (from
/// 30 to 256), the lengths of one ... follow uniform distribution (RandU)
/// and the other one has normal distribution (RandN)".
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LengthDistribution {
    /// All trajectories share one length.
    Fixed(usize),
    /// Lengths uniform in `[min, max]` (RandU).
    Uniform {
        /// Minimum length (inclusive).
        min: usize,
        /// Maximum length (inclusive).
        max: usize,
    },
    /// Lengths normal with the given mean/σ, clamped to `[min, max]`
    /// (RandN).
    Normal {
        /// Mean of the length distribution.
        mean: f64,
        /// Standard deviation of the length distribution.
        std_dev: f64,
        /// Minimum length (inclusive) after clamping.
        min: usize,
        /// Maximum length (inclusive) after clamping.
        max: usize,
    },
}

impl LengthDistribution {
    /// Draws one length.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        match *self {
            LengthDistribution::Fixed(len) => len,
            LengthDistribution::Uniform { min, max } => rng.gen_range(min..=max),
            LengthDistribution::Normal {
                mean,
                std_dev,
                min,
                max,
            } => {
                let normal =
                    Normal::new(mean, std_dev.max(f64::MIN_POSITIVE)).expect("finite parameters");
                let v = normal.sample(rng).round();
                (v.max(min as f64) as usize).min(max)
            }
        }
    }
}

/// One 2-d random walk of length `len`: `s_{i+1} = s_i + N(0, step_sigma)²`
/// starting at the origin — the standard time-series benchmark generator
/// referenced by the paper ([6, 19]).
///
/// # Panics
///
/// Panics if `len == 0` or `step_sigma` is not finite and positive.
pub fn random_walk<R: Rng + ?Sized>(rng: &mut R, len: usize, step_sigma: f64) -> Trajectory2 {
    random_walk_from(rng, Point2::xy(0.0, 0.0), len, step_sigma)
}

/// A 2-d random walk starting at `start` instead of the origin — the
/// generator behind spread walk sets, where scattering start points
/// keeps trajectories from all sharing the origin's neighbourhood (which
/// would defeat any locality-based index).
///
/// # Panics
///
/// Panics if `len == 0` or `step_sigma` is not finite and positive.
pub fn random_walk_from<R: Rng + ?Sized>(
    rng: &mut R,
    start: Point2,
    len: usize,
    step_sigma: f64,
) -> Trajectory2 {
    assert!(len > 0, "walk length must be positive");
    assert!(
        step_sigma.is_finite() && step_sigma > 0.0,
        "step sigma must be finite and positive"
    );
    let step = Normal::new(0.0, step_sigma).expect("validated above");
    let mut points = Vec::with_capacity(len);
    let (mut x, mut y) = (start.x(), start.y());
    for _ in 0..len {
        points.push(Point2::xy(x, y));
        x += step.sample(rng);
        y += step.sample(rng);
    }
    Trajectory2::new(points)
}

/// A database of `n` random walks with lengths drawn from `lengths` and
/// unit step σ.
pub fn random_walk_set<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    lengths: LengthDistribution,
) -> Dataset<2> {
    random_walk_set_spread(rng, n, lengths, 0.0)
}

/// Like [`random_walk_set`], but each walk starts at a point drawn
/// uniformly from the `spread × spread` square centred on the origin
/// (`spread == 0.0` reproduces [`random_walk_set`] draw-for-draw). Spread
/// starts give the dataset genuine spatial locality, so index smoke
/// tests see selective probes rather than every walk crowding the
/// origin.
///
/// # Panics
///
/// Panics if `spread` is negative or not finite.
pub fn random_walk_set_spread<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    lengths: LengthDistribution,
    spread: f64,
) -> Dataset<2> {
    assert!(
        spread.is_finite() && spread >= 0.0,
        "spread must be finite and non-negative"
    );
    (0..n)
        .map(|_| {
            let len = lengths.sample(rng);
            // Draw nothing extra when spread is zero, so seeded sets
            // generated before this option existed are bit-identical.
            let start = if spread > 0.0 {
                let half = spread / 2.0;
                Point2::xy(rng.gen_range(-half..=half), rng.gen_range(-half..=half))
            } else {
                Point2::xy(0.0, 0.0)
            };
            random_walk_from(rng, start, len, 1.0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;
    use proptest::prelude::*;

    #[test]
    fn walk_starts_at_origin_with_requested_length() {
        let w = random_walk(&mut seeded_rng(1), 64, 1.0);
        assert_eq!(w.len(), 64);
        assert_eq!(w[0], Point2::xy(0.0, 0.0));
        assert!(w.is_finite());
    }

    #[test]
    fn walk_is_deterministic_per_seed() {
        let a = random_walk(&mut seeded_rng(9), 32, 1.0);
        let b = random_walk(&mut seeded_rng(9), 32, 1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn uniform_lengths_stay_in_range() {
        let mut rng = seeded_rng(2);
        let ds = random_walk_set(
            &mut rng,
            200,
            LengthDistribution::Uniform { min: 30, max: 256 },
        );
        assert_eq!(ds.len(), 200);
        assert!(ds.iter().all(|(_, t)| (30..=256).contains(&t.len())));
        // With 200 draws the spread should cover a good part of the range.
        let lens: Vec<usize> = ds.iter().map(|(_, t)| t.len()).collect();
        assert!(lens.iter().min().unwrap() < &60);
        assert!(lens.iter().max().unwrap() > &220);
    }

    #[test]
    fn normal_lengths_cluster_around_mean() {
        let mut rng = seeded_rng(3);
        let dist = LengthDistribution::Normal {
            mean: 140.0,
            std_dev: 30.0,
            min: 30,
            max: 256,
        };
        let ds = random_walk_set(&mut rng, 300, dist);
        let mean: f64 = ds.iter().map(|(_, t)| t.len() as f64).sum::<f64>() / ds.len() as f64;
        assert!((mean - 140.0).abs() < 10.0, "sample mean {mean}");
        assert!(ds.iter().all(|(_, t)| (30..=256).contains(&t.len())));
    }

    #[test]
    fn fixed_lengths_are_exact() {
        let mut rng = seeded_rng(4);
        let ds = random_walk_set(&mut rng, 10, LengthDistribution::Fixed(77));
        assert!(ds.iter().all(|(_, t)| t.len() == 77));
    }

    #[test]
    #[should_panic(expected = "length must be positive")]
    fn zero_length_walk_panics() {
        let _ = random_walk(&mut seeded_rng(0), 0, 1.0);
    }

    #[test]
    fn zero_spread_reproduces_the_plain_set() {
        let lengths = LengthDistribution::Uniform { min: 10, max: 20 };
        let plain = random_walk_set(&mut seeded_rng(5), 30, lengths);
        let spread = random_walk_set_spread(&mut seeded_rng(5), 30, lengths, 0.0);
        assert_eq!(plain, spread);
    }

    #[test]
    fn spread_scatters_start_points_within_the_square() {
        let ds =
            random_walk_set_spread(&mut seeded_rng(6), 100, LengthDistribution::Fixed(8), 50.0);
        let starts: Vec<Point2> = ds.iter().map(|(_, t)| t[0]).collect();
        assert!(starts
            .iter()
            .all(|p| p.x().abs() <= 25.0 && p.y().abs() <= 25.0));
        // The starts genuinely scatter: not all in one quadrant, and a
        // spread of x-coordinates covering most of the square.
        let xs: Vec<f64> = starts.iter().map(Point2::x).collect();
        let (lo, hi) = xs
            .iter()
            .fold((f64::MAX, f64::MIN), |(l, h), &x| (l.min(x), h.max(x)));
        assert!(hi - lo > 30.0, "start spread only {}", hi - lo);
    }

    #[test]
    #[should_panic(expected = "spread must be finite")]
    fn negative_spread_panics() {
        let _ = random_walk_set_spread(&mut seeded_rng(0), 1, LengthDistribution::Fixed(4), -1.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Length sampling respects its bounds for any seed.
        #[test]
        fn length_sampling_in_bounds(seed in 0u64..1000) {
            let mut rng = seeded_rng(seed);
            let u = LengthDistribution::Uniform { min: 5, max: 9 }.sample(&mut rng);
            prop_assert!((5..=9).contains(&u));
            let n = LengthDistribution::Normal { mean: 7.0, std_dev: 5.0, min: 5, max: 9 }
                .sample(&mut rng);
            prop_assert!((5..=9).contains(&n));
        }

        /// Consecutive walk steps are finite and the walk has no jumps an
        /// order of magnitude beyond the step sigma (sanity on the
        /// generator, 8σ bound).
        #[test]
        fn steps_are_bounded(seed in 0u64..200) {
            let w = random_walk(&mut seeded_rng(seed), 100, 1.0);
            for pair in w.points().windows(2) {
                prop_assert!((pair[1].x() - pair[0].x()).abs() < 8.0);
                prop_assert!((pair[1].y() - pair[0].y()).abs() < 8.0);
            }
        }
    }
}
