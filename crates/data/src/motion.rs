//! The retrieval-efficiency databases of §5: Kungfu, Slip, NHL, and the
//! Mixed set, generated with the statistical shape the pruning experiments
//! depend on (sizes, lengths, and value ranges).

use crate::seeded_rng;
use crate::template::{instance_of, smooth_template};
use crate::walk::{random_walk, random_walk_set, LengthDistribution};
use rand::Rng;
use trajsim_core::{Dataset, Point2, Trajectory2};

/// A Kungfu-like database: "495 trajectories that record positions of body
/// joints of a person playing kung fu and the length of each trajectory is
/// 640" (§5.1). Wide, energetic motions: instances of a pool of martial
/// templates spanning a large spatial range.
pub fn kungfu_like(seed: u64) -> Dataset<2> {
    let mut rng = seeded_rng(seed);
    const BOUNDS: (f64, f64, f64, f64) = (0.0, 200.0, 0.0, 200.0);
    // Each move (template) differs in *style*, not just location: moves
    // dwell near a small set of template-specific stances and strike
    // between them with template-specific tempo. Per-trajectory
    // normalization erases absolute location, but dwell structure
    // (occupancy distribution relative to the trajectory's own spread)
    // survives — which is what gives intra-move neighbours their edge
    // over the bulk, as the real motion-capture data has.
    let templates: Vec<Trajectory2> = (0..15)
        .map(|_| {
            let stances = rng.gen_range(2..5);
            let base = smooth_template(&mut rng, stances, 640, BOUNDS);
            // Re-time the move so it dwells at stances: a sharpened
            // sinusoidal schedule with template-specific tempo.
            let tempo = rng.gen_range(1.5..6.0f64);
            let sharpness = rng.gen_range(1.0..4.0f64);
            let n = base.len();
            Trajectory2::new(
                (0..n)
                    .map(|i| {
                        let u = i as f64 / (n - 1) as f64;
                        // Dwell-and-strike: compress transitions.
                        let phase = (u * tempo).fract();
                        let eased = 0.5
                            - 0.5
                                * (std::f64::consts::PI * phase).cos().signum()
                                * (std::f64::consts::PI * phase).cos().abs().powf(sharpness);
                        let cycle = (u * tempo).floor();
                        let pos = ((cycle + eased) / tempo).clamp(0.0, 1.0);
                        base[(pos * (n - 1) as f64).round() as usize]
                    })
                    .collect(),
            )
        })
        .collect();
    (0..495)
        .map(|i| {
            let template = &templates[i % templates.len()];
            instance_of(&mut rng, template, 640, 0.45, 3.0)
        })
        .collect()
}

/// A Slip-like database: "495 trajectories which record positions of body
/// joints of a person slipping down and trying to stand up and the length
/// of each trajectory is 400" (§5.1).
///
/// The characteristic that matters for Figure 7(b) — q-gram pruning power
/// collapsing to 0 for q > 1 — is the *narrow value range*: a slip is a
/// short, mostly vertical motion, so all 495 trajectories crowd the same
/// few ε-cells and almost every mean-value q-gram matches every other.
/// We reproduce that by confining the motion to a small box with a sharp
/// downward "fall" regime in the middle.
pub fn slip_like(seed: u64) -> Dataset<2> {
    let mut rng = seeded_rng(seed);
    (0..495)
        .map(|_| {
            let len = 400usize;
            let fall_at = rng.gen_range(len / 4..len / 2);
            let recover_at =
                rng.gen_range(fall_at + len / 8..(3 * len / 4).max(fall_at + len / 8 + 1));
            let x0 = rng.gen_range(0.0..2.0);
            let stand_y = rng.gen_range(4.5..5.5);
            let floor_y = rng.gen_range(0.0..0.5);
            let mut points = Vec::with_capacity(len);
            for i in 0..len {
                // Standing -> falling -> on the floor -> standing back up,
                // with small sway; everything inside roughly [0,4] x [0,6].
                let y = if i < fall_at {
                    stand_y
                } else if i < recover_at {
                    // Quick drop, slow recovery.
                    let drop_t = (i - fall_at) as f64 / (recover_at - fall_at) as f64;
                    floor_y + (stand_y - floor_y) * (drop_t * drop_t)
                } else {
                    stand_y
                };
                let sway_x = x0 + 0.3 * ((i as f64) * 0.05).sin() + rng.gen_range(-0.05..0.05);
                let sway_y = y + rng.gen_range(-0.05..0.05);
                points.push(Point2::xy(sway_x, sway_y));
            }
            Trajectory2::new(points)
        })
        .collect()
}

/// An NHL-like database: "5000 two dimensional trajectories of National
/// Hockey League players and their trajectory lengths vary from 30 to 256"
/// (§5.4). Rink-bounded random-waypoint skating.
pub fn nhl_like(seed: u64, n: usize) -> Dataset<2> {
    let mut rng = seeded_rng(seed);
    // NHL rink: 200 ft x 85 ft.
    const RINK: (f64, f64, f64, f64) = (0.0, 200.0, 0.0, 85.0);
    (0..n)
        .map(|_| {
            let len = rng.gen_range(30..=256);
            let waypoints = rng.gen_range(3..9);
            let template = smooth_template(&mut rng, waypoints, len, RINK);
            instance_of(&mut rng, &template, len, 0.3, 1.0)
        })
        .collect()
}

/// A Mixed-like database (after Vlachos et al. \[34\]): `n` trajectories
/// whose "lengths vary from 60 to 2000" (§5.4), drawn from a mixture of
/// generators (smooth waypoint motions, random walks, and circular sweeps)
/// with log-uniform lengths, so short trajectories are common and very
/// long ones exist.
pub fn mixed_like(seed: u64, n: usize) -> Dataset<2> {
    let mut rng = seeded_rng(seed);
    (0..n)
        .map(|_| {
            // Log-uniform in [60, 2000].
            let u: f64 = rng.gen_range((60.0f64).ln()..(2000.0f64).ln());
            let len = u.exp().round() as usize;
            match rng.gen_range(0..3) {
                0 => {
                    let waypoints = rng.gen_range(3..10);
                    let template =
                        smooth_template(&mut rng, waypoints, len, (0.0, 100.0, 0.0, 100.0));
                    instance_of(&mut rng, &template, len, 0.3, 1.0)
                }
                1 => random_walk(&mut rng, len, 1.0),
                _ => circle_sweep(&mut rng, len),
            }
        })
        .collect()
}

/// A noisy circular arc — the third mixture component of [`mixed_like`].
fn circle_sweep<R: Rng + ?Sized>(rng: &mut R, len: usize) -> Trajectory2 {
    let cx = rng.gen_range(20.0..80.0);
    let cy = rng.gen_range(20.0..80.0);
    let radius = rng.gen_range(5.0..30.0);
    let turns = rng.gen_range(0.5..3.0f64);
    let phase = rng.gen_range(0.0..std::f64::consts::TAU);
    let points = (0..len)
        .map(|i| {
            let theta = phase + turns * std::f64::consts::TAU * i as f64 / len.max(2) as f64;
            Point2::xy(
                cx + radius * theta.cos() + rng.gen_range(-0.3..0.3),
                cy + radius * theta.sin() + rng.gen_range(-0.3..0.3),
            )
        })
        .collect();
    Trajectory2::new(points)
}

/// Re-export site for the random-walk database of §5.4 with the paper's
/// length range (30–1024): `random_walk_db(seed, 100_000)` reproduces the
/// full-scale set; the harness defaults to a scaled-down `n`.
pub fn random_walk_db(seed: u64, n: usize) -> Dataset<2> {
    let mut rng = seeded_rng(seed);
    random_walk_set(
        &mut rng,
        n,
        LengthDistribution::Uniform { min: 30, max: 1024 },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kungfu_shape() {
        let ds = kungfu_like(1);
        assert_eq!(ds.len(), 495);
        assert!(ds.iter().all(|(_, t)| t.len() == 640 && t.is_finite()));
    }

    #[test]
    fn slip_shape_and_value_range() {
        let ds = slip_like(1);
        assert_eq!(ds.len(), 495);
        assert!(ds.iter().all(|(_, t)| t.len() == 400));
        // The defining property: a tight value range across the whole set.
        let (mut x_max, mut y_max) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        let (mut x_min, mut y_min) = (f64::INFINITY, f64::INFINITY);
        for (_, t) in ds.iter() {
            for p in t.iter() {
                x_max = x_max.max(p.x());
                y_max = y_max.max(p.y());
                x_min = x_min.min(p.x());
                y_min = y_min.min(p.y());
            }
        }
        assert!(x_max - x_min < 10.0, "x range {}", x_max - x_min);
        assert!(y_max - y_min < 10.0, "y range {}", y_max - y_min);
    }

    #[test]
    fn slip_contains_a_fall() {
        let ds = slip_like(2);
        let t = ds.get(0).unwrap();
        let ys: Vec<f64> = t.iter().map(|p| p.y()).collect();
        let y_max = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let y_min = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(y_max - y_min > 3.0, "no fall: range {}", y_max - y_min);
    }

    #[test]
    fn nhl_shape() {
        let ds = nhl_like(1, 500);
        assert_eq!(ds.len(), 500);
        assert!(ds.iter().all(|(_, t)| (30..=256).contains(&t.len())));
        // Stays on the rink.
        for (_, t) in ds.iter() {
            for p in t.iter() {
                assert!((-10.0..=210.0).contains(&p.x()));
                assert!((-10.0..=95.0).contains(&p.y()));
            }
        }
    }

    #[test]
    fn mixed_lengths_span_the_range() {
        let ds = mixed_like(1, 400);
        assert_eq!(ds.len(), 400);
        let lens: Vec<usize> = ds.iter().map(|(_, t)| t.len()).collect();
        assert!(lens.iter().all(|&l| (60..=2000).contains(&l)));
        assert!(*lens.iter().min().unwrap() < 150, "no short trajectories");
        assert!(*lens.iter().max().unwrap() > 1000, "no long trajectories");
    }

    #[test]
    fn random_walk_db_lengths() {
        let ds = random_walk_db(1, 100);
        assert!(ds.iter().all(|(_, t)| (30..=1024).contains(&t.len())));
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(nhl_like(5, 50), nhl_like(5, 50));
        assert_eq!(mixed_like(5, 50), mixed_like(5, 50));
        assert_eq!(slip_like(5), slip_like(5));
        assert_eq!(kungfu_like(5), kungfu_like(5));
    }
}
