//! Smooth motion templates and per-instance variation.
//!
//! The labelled benchmark sets (Cameramouse words, ASL signs, the Kungfu
//! and Slip motion captures) are all *a small number of underlying motions,
//! each performed several times with timing and position variation*. That
//! structure — not the exact shapes — is what the clustering,
//! classification, and pruning experiments exercise, so we synthesize it
//! directly: a class is a smooth template curve through random waypoints,
//! and an instance is the template re-sampled under a random monotone time
//! warp plus small positional jitter.

use rand::Rng;
use rand_distr::{Distribution, Normal};
use trajsim_core::{Point2, Trajectory2};

/// Generates a smooth 2-d template curve of length `len` through
/// `n_waypoints` random waypoints inside `bounds` (given as
/// `(x_min, x_max, y_min, y_max)`), using cosine interpolation between
/// consecutive waypoints so the motion has continuous-looking velocity.
///
/// # Panics
///
/// Panics if `len == 0`, `n_waypoints < 2`, or the bounds are inverted.
pub fn smooth_template<R: Rng + ?Sized>(
    rng: &mut R,
    n_waypoints: usize,
    len: usize,
    bounds: (f64, f64, f64, f64),
) -> Trajectory2 {
    assert!(len > 0, "template length must be positive");
    assert!(n_waypoints >= 2, "need at least two waypoints");
    let (x0, x1, y0, y1) = bounds;
    assert!(x0 < x1 && y0 < y1, "bounds must be non-degenerate");
    let waypoints: Vec<Point2> = (0..n_waypoints)
        .map(|_| Point2::xy(rng.gen_range(x0..x1), rng.gen_range(y0..y1)))
        .collect();
    let mut points = Vec::with_capacity(len);
    for i in 0..len {
        // Position along the waypoint polyline in [0, n_waypoints - 1].
        let t = if len == 1 {
            0.0
        } else {
            i as f64 / (len - 1) as f64 * (n_waypoints - 1) as f64
        };
        let seg = (t.floor() as usize).min(n_waypoints - 2);
        let frac = t - seg as f64;
        // Cosine easing: smooth start/stop at each waypoint.
        let w = (1.0 - (frac * std::f64::consts::PI).cos()) * 0.5;
        let (a, b) = (waypoints[seg], waypoints[seg + 1]);
        points.push(Point2::xy(
            a.x() + (b.x() - a.x()) * w,
            a.y() + (b.y() - a.y()) * w,
        ));
    }
    Trajectory2::new(points)
}

/// Produces one *instance* of a template: the template re-sampled under a
/// random monotone time warp (local time shifting, §1) and perturbed with
/// per-point Gaussian jitter of standard deviation `jitter_sigma`.
///
/// `warp_strength` in `[0, 1)` controls how uneven the re-sampling is
/// (0 = uniform). The output has length `out_len`.
///
/// # Panics
///
/// Panics if the template is empty or `out_len == 0`.
pub fn instance_of<R: Rng + ?Sized>(
    rng: &mut R,
    template: &Trajectory2,
    out_len: usize,
    warp_strength: f64,
    jitter_sigma: f64,
) -> Trajectory2 {
    assert!(!template.is_empty(), "template must be non-empty");
    assert!(out_len > 0, "instance length must be positive");
    let warp = monotone_warp(rng, out_len, warp_strength);
    let jitter = Normal::new(0.0, jitter_sigma.max(f64::MIN_POSITIVE)).expect("finite sigma");
    let n = template.len();
    let points = warp
        .into_iter()
        .map(|u| {
            // u in [0, 1] -> fractional index into the template.
            let pos = u * (n - 1) as f64;
            let i = (pos.floor() as usize).min(n.saturating_sub(2));
            let frac = (pos - i as f64).clamp(0.0, 1.0);
            let (a, b) = if n == 1 {
                (template[0], template[0])
            } else {
                (template[i], template[i + 1])
            };
            let x =
                a.x() + (b.x() - a.x()) * frac + jitter.sample(rng) * jitter_signum(jitter_sigma);
            let y =
                a.y() + (b.y() - a.y()) * frac + jitter.sample(rng) * jitter_signum(jitter_sigma);
            Point2::xy(x, y)
        })
        .collect();
    Trajectory2::new(points)
}

/// 0 disables jitter entirely (`Normal` cannot take σ = 0).
fn jitter_signum(sigma: f64) -> f64 {
    if sigma > 0.0 {
        1.0
    } else {
        0.0
    }
}

/// A random monotone sequence of `len` values spanning [0, 1]: cumulative
/// sums of positive increments whose spread grows with `strength`.
fn monotone_warp<R: Rng + ?Sized>(rng: &mut R, len: usize, strength: f64) -> Vec<f64> {
    let strength = strength.clamp(0.0, 0.99);
    if len == 1 {
        return vec![0.0];
    }
    let mut increments: Vec<f64> = (0..len - 1)
        .map(|_| 1.0 + strength * rng.gen_range(-1.0..1.0f64))
        .collect();
    let total: f64 = increments.iter().sum();
    for inc in &mut increments {
        *inc /= total;
    }
    let mut warp = Vec::with_capacity(len);
    let mut acc = 0.0;
    warp.push(0.0);
    for inc in increments {
        acc += inc;
        warp.push(acc.min(1.0));
    }
    *warp.last_mut().expect("non-empty") = 1.0;
    warp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;
    use proptest::prelude::*;

    const BOUNDS: (f64, f64, f64, f64) = (0.0, 100.0, 0.0, 100.0);

    #[test]
    fn template_has_requested_length_and_stays_in_bounds() {
        let mut rng = seeded_rng(1);
        let t = smooth_template(&mut rng, 6, 120, BOUNDS);
        assert_eq!(t.len(), 120);
        for p in t.iter() {
            assert!((0.0..=100.0).contains(&p.x()));
            assert!((0.0..=100.0).contains(&p.y()));
        }
    }

    #[test]
    fn template_is_deterministic_per_seed() {
        let a = smooth_template(&mut seeded_rng(7), 5, 50, BOUNDS);
        let b = smooth_template(&mut seeded_rng(7), 5, 50, BOUNDS);
        let c = smooth_template(&mut seeded_rng(8), 5, 50, BOUNDS);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn instance_without_variation_resamples_template() {
        let mut rng = seeded_rng(2);
        let t = smooth_template(&mut rng, 4, 80, BOUNDS);
        let inst = instance_of(&mut rng, &t, 80, 0.0, 0.0);
        // Zero warp + zero jitter at the same length = the template itself.
        for (a, b) in t.iter().zip(inst.iter()) {
            assert!((a.x() - b.x()).abs() < 1e-9);
            assert!((a.y() - b.y()).abs() < 1e-9);
        }
    }

    #[test]
    fn instance_endpoints_anchor_to_template() {
        let mut rng = seeded_rng(3);
        let t = smooth_template(&mut rng, 4, 60, BOUNDS);
        let inst = instance_of(&mut rng, &t, 90, 0.5, 0.0);
        assert_eq!(inst.len(), 90);
        assert!((inst[0].x() - t[0].x()).abs() < 1e-9);
        let (li, lt) = (inst[89], t[59]);
        assert!((li.x() - lt.x()).abs() < 1e-9 && (li.y() - lt.y()).abs() < 1e-9);
    }

    #[test]
    fn single_point_template_is_handled() {
        let mut rng = seeded_rng(4);
        let t = Trajectory2::from_xy(&[(5.0, 5.0)]);
        let inst = instance_of(&mut rng, &t, 10, 0.5, 0.0);
        assert_eq!(inst.len(), 10);
        assert!(inst.iter().all(|p| p.x() == 5.0 && p.y() == 5.0));
    }

    #[test]
    #[should_panic(expected = "two waypoints")]
    fn too_few_waypoints_panics() {
        let _ = smooth_template(&mut seeded_rng(0), 1, 10, BOUNDS);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The warp underlying instance generation is monotone and spans
        /// [0, 1] (indirect test through resampling a ramp template).
        #[test]
        fn warp_is_monotone(seed in 0u64..500, len in 2usize..64, strength in 0.0..0.95f64) {
            let mut rng = seeded_rng(seed);
            let warp = super::monotone_warp(&mut rng, len, strength);
            prop_assert_eq!(warp.len(), len);
            prop_assert_eq!(warp[0], 0.0);
            prop_assert_eq!(warp[len - 1], 1.0);
            for w in warp.windows(2) {
                prop_assert!(w[1] >= w[0]);
            }
        }

        /// Instances always have the requested length and finite values.
        #[test]
        fn instances_are_well_formed(seed in 0u64..200, out_len in 1usize..100) {
            let mut rng = seeded_rng(seed);
            let t = smooth_template(&mut rng, 4, 30, BOUNDS);
            let inst = instance_of(&mut rng, &t, out_len, 0.4, 1.5);
            prop_assert_eq!(inst.len(), out_len);
            prop_assert!(inst.is_finite());
        }
    }
}
