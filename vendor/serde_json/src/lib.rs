//! Offline stand-in for the [`serde_json`](https://crates.io/crates/serde_json)
//! crate.
//!
//! The trajsim workspace only builds JSON values imperatively ([`Map`],
//! [`Value`], the [`json!`] macro) and pretty-prints them with
//! [`to_string_pretty`]; no serde derive machinery is involved. This crate
//! implements exactly that surface.
//!
//! Differences from the real crate: [`Map`] preserves insertion order
//! (like serde_json's `preserve_order` feature), and non-finite floats
//! serialize as `null`.
//!
//! [`from_str`] parses JSON text back into a [`Value`] (the observability
//! pipeline validates its own emitted metrics/trace files with it); it
//! accepts exactly RFC 8259 with the usual serde_json relaxations (no
//! comments, no trailing commas).

#![forbid(unsafe_code)]

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A JSON string.
    String(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object.
    Object(Map),
}

/// A JSON number: integer or float, kept apart so integers print exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Finite float.
    Float(f64),
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::PosInt(v) => write!(f, "{v}"),
            Number::NegInt(v) => write!(f, "{v}"),
            // `{:?}` keeps a trailing `.0` on integral floats and prints
            // the shortest round-trippable form otherwise — matching
            // serde_json's output closely enough for our result files.
            Number::Float(v) => write!(f, "{v:?}"),
        }
    }
}

/// An insertion-ordered string-keyed JSON object.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty object.
    pub fn new() -> Self {
        Map::default()
    }

    /// Inserts `value` under `key`, replacing (in place) any existing
    /// entry with the same key. Returns the previous value, if any.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            return Some(std::mem::replace(&mut slot.1, value));
        }
        self.entries.push((key, value));
        None
    }

    /// The value stored under `key`, if any.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the object has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl Value {
    /// Object member access: `value.get("key")`, `None` off objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The object, if this is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// The array, if this is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `u64`, when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::PosInt(v)) => Some(*v),
            _ => None,
        }
    }

    /// The number as `i64`, when exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::PosInt(v)) => i64::try_from(*v).ok(),
            Value::Number(Number::NegInt(v)) => Some(*v),
            _ => None,
        }
    }

    /// Any number as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::PosInt(v)) => Some(*v as f64),
            Value::Number(Number::NegInt(v)) => Some(*v as f64),
            Value::Number(Number::Float(v)) => Some(*v),
            _ => None,
        }
    }
}

macro_rules! impl_from_int {
    ($($t:ty),+ $(,)?) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                #[allow(unused_comparisons)]
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v as i64))
                }
            }
        }
    )+};
}

impl_from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        if v.is_finite() {
            Value::Number(Number::Float(v))
        } else {
            Value::Null
        }
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::from(f64::from(v))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<Map> for Value {
    fn from(v: Map) -> Value {
        Value::Object(v)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

/// Serialization or parse failure. Building values imperatively cannot
/// fail, so serialization never produces this; [`from_str`] reports the
/// byte offset and nature of a syntax error.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn at(offset: usize, what: impl fmt::Display) -> Error {
        Error {
            msg: format!("{what} at byte {offset}"),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.msg.is_empty() {
            write!(f, "json serialization error")
        } else {
            write!(f, "json error: {}", self.msg)
        }
    }
}

impl std::error::Error for Error {}

/// Pretty-prints `value` with 2-space indentation.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(value, 0, &mut out);
    Ok(out)
}

/// Prints `value` in compact form.
pub fn to_string(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(value, &mut out);
    Ok(out)
}

fn write_pretty(value: &Value, indent: usize, out: &mut String) {
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                out.push_str(if i == 0 { "\n" } else { ",\n" });
                push_indent(indent + 1, out);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                out.push_str(if i == 0 { "\n" } else { ",\n" });
                push_indent(indent + 1, out);
                push_escaped(key, out);
                out.push_str(": ");
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

fn write_compact(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => push_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_escaped(key, out);
                out.push(':');
                write_compact(item, out);
            }
            out.push('}');
        }
    }
}

fn push_indent(levels: usize, out: &mut String) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn push_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses JSON text into a [`Value`].
///
/// # Errors
///
/// Reports the byte offset of the first syntax error; trailing
/// non-whitespace after the value is an error too.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::at(p.pos, "trailing characters"));
    }
    Ok(value)
}

/// Recursive-descent JSON parser over raw bytes (string contents are
/// re-validated as UTF-8 when sliced back out).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::at(self.pos, format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::at(self.pos, format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::at(self.pos, format!("unexpected {:?}", c as char))),
            None => Err(Error::at(self.pos, "unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::at(self.pos, "expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::at(self.pos, "expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes up to the next quote/escape.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::at(start, "invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::at(self.pos, "unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let first = self.hex4()?;
                            let scalar = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair: require the low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let second = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err(Error::at(self.pos, "unpaired surrogate"));
                                }
                                0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(scalar)
                                    .ok_or_else(|| Error::at(self.pos, "invalid codepoint"))?,
                            );
                        }
                        other => {
                            return Err(Error::at(
                                self.pos - 1,
                                format!("invalid escape {:?}", other as char),
                            ))
                        }
                    }
                }
                Some(_) => return Err(Error::at(self.pos, "control character in string")),
                None => return Err(Error::at(self.pos, "unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::at(self.pos, "truncated \\u escape"))?;
        let text =
            std::str::from_utf8(slice).map_err(|_| Error::at(self.pos, "invalid \\u escape"))?;
        let v =
            u32::from_str_radix(text, 16).map_err(|_| Error::at(self.pos, "invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            return Err(Error::at(self.pos, "expected digit"));
        }
        // Leading-zero rule: 0 must not be followed by another digit.
        if self.peek() == Some(b'0') {
            self.pos += 1;
        } else {
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(Error::at(self.pos, "expected fraction digit"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(Error::at(self.pos, "expected exponent digit"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(v)));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(v)));
            }
            // Out-of-range integer: fall through to f64 like serde_json's
            // arbitrary_precision-off behaviour.
        }
        let v = text
            .parse::<f64>()
            .map_err(|_| Error::at(start, "invalid number"))?;
        if v.is_finite() {
            Ok(Value::Number(Number::Float(v)))
        } else {
            Err(Error::at(start, "number out of range"))
        }
    }
}

/// Fresh array buffer for [`json!`] expansion (a function call so the
/// push-heavy expansion stays lint-clean at local call sites).
#[doc(hidden)]
pub fn __new_array() -> Vec<Value> {
    Vec::new()
}

/// Builds a [`Value`] from JSON-like syntax: objects with string-literal
/// keys and expression values (nesting allowed), arrays, and bare
/// expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($entries:tt)+ }) => {{
        let mut map = $crate::Map::new();
        $crate::__json_object!(map, $($entries)+);
        $crate::Value::Object(map)
    }};
    ([]) => { $crate::Value::Array(Vec::new()) };
    ([ $($items:tt)+ ]) => {{
        let mut items = $crate::__new_array();
        $crate::__json_array!(items, $($items)+);
        $crate::Value::Array(items)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

/// Munches `"key": value` entries; values may be nested JSON syntax or
/// arbitrary Rust expressions.
#[doc(hidden)]
#[macro_export]
macro_rules! __json_object {
    ($map:ident,) => {};
    ($map:ident, $key:literal : null $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::Value::Null);
        $crate::__json_object!($map, $($($rest)*)?);
    };
    ($map:ident, $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::json!({ $($inner)* }));
        $crate::__json_object!($map, $($($rest)*)?);
    };
    ($map:ident, $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::json!([ $($inner)* ]));
        $crate::__json_object!($map, $($($rest)*)?);
    };
    ($map:ident, $key:literal : $val:expr , $($rest:tt)*) => {
        $map.insert($key.to_string(), $crate::Value::from($val));
        $crate::__json_object!($map, $($rest)*);
    };
    ($map:ident, $key:literal : $val:expr) => {
        $map.insert($key.to_string(), $crate::Value::from($val));
    };
}

/// Munches array items; same value grammar as [`__json_object!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __json_array {
    ($items:ident,) => {};
    ($items:ident, null $(, $($rest:tt)*)?) => {
        $items.push($crate::Value::Null);
        $crate::__json_array!($items, $($($rest)*)?);
    };
    ($items:ident, { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $items.push($crate::json!({ $($inner)* }));
        $crate::__json_array!($items, $($($rest)*)?);
    };
    ($items:ident, [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $items.push($crate::json!([ $($inner)* ]));
        $crate::__json_array!($items, $($($rest)*)?);
    };
    ($items:ident, $val:expr , $($rest:tt)*) => {
        $items.push($crate::Value::from($val));
        $crate::__json_array!($items, $($rest)*);
    };
    ($items:ident, $val:expr) => {
        $items.push($crate::Value::from($val));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_objects() {
        let n = 3usize;
        let v = json!({
            "q": n,
            "power": 0.5,
            "name": "seq",
            "ok": true,
            "nested": { "k": 1 },
            "arr": [1, 2],
        });
        let Value::Object(map) = &v else {
            panic!("expected object")
        };
        assert_eq!(map.get("q"), Some(&Value::Number(Number::PosInt(3))));
        assert_eq!(map.get("power"), Some(&Value::Number(Number::Float(0.5))));
        assert_eq!(map.get("name"), Some(&Value::String("seq".into())));
        assert_eq!(map.len(), 6);
    }

    #[test]
    fn pretty_output_matches_serde_json_shape() {
        let v = json!({ "a": 1, "b": [1.5, -2], "c": { "d": "x\"y" } });
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(
            s,
            "{\n  \"a\": 1,\n  \"b\": [\n    1.5,\n    -2\n  ],\n  \"c\": {\n    \"d\": \"x\\\"y\"\n  }\n}"
        );
    }

    #[test]
    fn floats_keep_trailing_zero() {
        assert_eq!(to_string(&json!(2.0)).unwrap(), "2.0");
        assert_eq!(to_string(&json!(2u32)).unwrap(), "2");
        assert_eq!(to_string(&Value::from(f64::NAN)).unwrap(), "null");
    }

    #[test]
    fn map_insert_replaces_in_place() {
        let mut m = Map::new();
        m.insert("a".to_string(), json!(1));
        m.insert("b".to_string(), json!(2));
        assert_eq!(m.insert("a".to_string(), json!(9)), Some(json!(1)));
        let keys: Vec<&String> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["a", "b"]);
        assert_eq!(m.get("a"), Some(&json!(9)));
    }

    #[test]
    fn empty_containers_print_compact() {
        assert_eq!(to_string_pretty(&json!({})).unwrap(), "{}");
        assert_eq!(to_string_pretty(&Value::Array(vec![])).unwrap(), "[]");
    }

    #[test]
    fn parse_round_trips_own_output() {
        let v = json!({
            "a": 1,
            "b": [1.5, -2, true, null],
            "c": { "d": "x\"y\n", "e": [] },
            "f": 1e3,
            "g": -0.25,
        });
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            assert_eq!(from_str(&text).unwrap(), v);
        }
    }

    #[test]
    fn parse_accepts_escapes_and_unicode() {
        let v = from_str(r#"{"s": "tab\t quote\" u\u00e9 pair\ud83d\ude00"}"#).unwrap();
        assert_eq!(
            v.get("s").unwrap().as_str(),
            Some("tab\t quote\" ué pair😀")
        );
    }

    #[test]
    fn parse_number_forms() {
        assert_eq!(from_str("42").unwrap().as_u64(), Some(42));
        assert_eq!(from_str("-7").unwrap().as_i64(), Some(-7));
        assert_eq!(from_str("2.5e2").unwrap().as_f64(), Some(250.0));
        assert_eq!(from_str("0").unwrap().as_u64(), Some(0));
        // u64-overflowing integers degrade to floats, as in serde_json
        // with arbitrary_precision off.
        assert_eq!(
            from_str("99999999999999999999999").unwrap().as_f64(),
            Some(1e23)
        );
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "01",
            "1.",
            "1e",
            "\"\\x\"",
            "\"",
            "[1] x",
            "nan",
            "+1",
        ] {
            assert!(from_str(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn accessors_select_the_right_variant() {
        let v = json!({ "n": 3, "s": "x", "b": false, "a": [1] });
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("n").unwrap().as_i64(), Some(3));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 1);
        assert!(v.as_object().is_some());
        assert!(v.get("missing").is_none());
        assert!(v.get("s").unwrap().as_u64().is_none());
    }
}
