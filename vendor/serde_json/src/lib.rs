//! Offline stand-in for the [`serde_json`](https://crates.io/crates/serde_json)
//! crate.
//!
//! The trajsim workspace only builds JSON values imperatively ([`Map`],
//! [`Value`], the [`json!`] macro) and pretty-prints them with
//! [`to_string_pretty`]; no serde derive machinery is involved. This crate
//! implements exactly that surface.
//!
//! Differences from the real crate: [`Map`] preserves insertion order
//! (like serde_json's `preserve_order` feature), and non-finite floats
//! serialize as `null`.

#![forbid(unsafe_code)]

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A JSON string.
    String(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object.
    Object(Map),
}

/// A JSON number: integer or float, kept apart so integers print exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Finite float.
    Float(f64),
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::PosInt(v) => write!(f, "{v}"),
            Number::NegInt(v) => write!(f, "{v}"),
            // `{:?}` keeps a trailing `.0` on integral floats and prints
            // the shortest round-trippable form otherwise — matching
            // serde_json's output closely enough for our result files.
            Number::Float(v) => write!(f, "{v:?}"),
        }
    }
}

/// An insertion-ordered string-keyed JSON object.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty object.
    pub fn new() -> Self {
        Map::default()
    }

    /// Inserts `value` under `key`, replacing (in place) any existing
    /// entry with the same key. Returns the previous value, if any.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            return Some(std::mem::replace(&mut slot.1, value));
        }
        self.entries.push((key, value));
        None
    }

    /// The value stored under `key`, if any.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the object has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

macro_rules! impl_from_int {
    ($($t:ty),+ $(,)?) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                #[allow(unused_comparisons)]
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v as i64))
                }
            }
        }
    )+};
}

impl_from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        if v.is_finite() {
            Value::Number(Number::Float(v))
        } else {
            Value::Null
        }
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::from(f64::from(v))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<Map> for Value {
    fn from(v: Map) -> Value {
        Value::Object(v)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

/// Serialization failure. Building values imperatively cannot fail, so
/// this is never produced; it exists so signatures match the real crate.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json serialization error")
    }
}

impl std::error::Error for Error {}

/// Pretty-prints `value` with 2-space indentation.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(value, 0, &mut out);
    Ok(out)
}

/// Prints `value` in compact form.
pub fn to_string(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(value, &mut out);
    Ok(out)
}

fn write_pretty(value: &Value, indent: usize, out: &mut String) {
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                out.push_str(if i == 0 { "\n" } else { ",\n" });
                push_indent(indent + 1, out);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                out.push_str(if i == 0 { "\n" } else { ",\n" });
                push_indent(indent + 1, out);
                push_escaped(key, out);
                out.push_str(": ");
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

fn write_compact(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => push_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_escaped(key, out);
                out.push(':');
                write_compact(item, out);
            }
            out.push('}');
        }
    }
}

fn push_indent(levels: usize, out: &mut String) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn push_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Fresh array buffer for [`json!`] expansion (a function call so the
/// push-heavy expansion stays lint-clean at local call sites).
#[doc(hidden)]
pub fn __new_array() -> Vec<Value> {
    Vec::new()
}

/// Builds a [`Value`] from JSON-like syntax: objects with string-literal
/// keys and expression values (nesting allowed), arrays, and bare
/// expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($entries:tt)+ }) => {{
        let mut map = $crate::Map::new();
        $crate::__json_object!(map, $($entries)+);
        $crate::Value::Object(map)
    }};
    ([]) => { $crate::Value::Array(Vec::new()) };
    ([ $($items:tt)+ ]) => {{
        let mut items = $crate::__new_array();
        $crate::__json_array!(items, $($items)+);
        $crate::Value::Array(items)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

/// Munches `"key": value` entries; values may be nested JSON syntax or
/// arbitrary Rust expressions.
#[doc(hidden)]
#[macro_export]
macro_rules! __json_object {
    ($map:ident,) => {};
    ($map:ident, $key:literal : null $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::Value::Null);
        $crate::__json_object!($map, $($($rest)*)?);
    };
    ($map:ident, $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::json!({ $($inner)* }));
        $crate::__json_object!($map, $($($rest)*)?);
    };
    ($map:ident, $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::json!([ $($inner)* ]));
        $crate::__json_object!($map, $($($rest)*)?);
    };
    ($map:ident, $key:literal : $val:expr , $($rest:tt)*) => {
        $map.insert($key.to_string(), $crate::Value::from($val));
        $crate::__json_object!($map, $($rest)*);
    };
    ($map:ident, $key:literal : $val:expr) => {
        $map.insert($key.to_string(), $crate::Value::from($val));
    };
}

/// Munches array items; same value grammar as [`__json_object!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __json_array {
    ($items:ident,) => {};
    ($items:ident, null $(, $($rest:tt)*)?) => {
        $items.push($crate::Value::Null);
        $crate::__json_array!($items, $($($rest)*)?);
    };
    ($items:ident, { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $items.push($crate::json!({ $($inner)* }));
        $crate::__json_array!($items, $($($rest)*)?);
    };
    ($items:ident, [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $items.push($crate::json!([ $($inner)* ]));
        $crate::__json_array!($items, $($($rest)*)?);
    };
    ($items:ident, $val:expr , $($rest:tt)*) => {
        $items.push($crate::Value::from($val));
        $crate::__json_array!($items, $($rest)*);
    };
    ($items:ident, $val:expr) => {
        $items.push($crate::Value::from($val));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_objects() {
        let n = 3usize;
        let v = json!({
            "q": n,
            "power": 0.5,
            "name": "seq",
            "ok": true,
            "nested": { "k": 1 },
            "arr": [1, 2],
        });
        let Value::Object(map) = &v else {
            panic!("expected object")
        };
        assert_eq!(map.get("q"), Some(&Value::Number(Number::PosInt(3))));
        assert_eq!(map.get("power"), Some(&Value::Number(Number::Float(0.5))));
        assert_eq!(map.get("name"), Some(&Value::String("seq".into())));
        assert_eq!(map.len(), 6);
    }

    #[test]
    fn pretty_output_matches_serde_json_shape() {
        let v = json!({ "a": 1, "b": [1.5, -2], "c": { "d": "x\"y" } });
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(
            s,
            "{\n  \"a\": 1,\n  \"b\": [\n    1.5,\n    -2\n  ],\n  \"c\": {\n    \"d\": \"x\\\"y\"\n  }\n}"
        );
    }

    #[test]
    fn floats_keep_trailing_zero() {
        assert_eq!(to_string(&json!(2.0)).unwrap(), "2.0");
        assert_eq!(to_string(&json!(2u32)).unwrap(), "2");
        assert_eq!(to_string(&Value::from(f64::NAN)).unwrap(), "null");
    }

    #[test]
    fn map_insert_replaces_in_place() {
        let mut m = Map::new();
        m.insert("a".to_string(), json!(1));
        m.insert("b".to_string(), json!(2));
        assert_eq!(m.insert("a".to_string(), json!(9)), Some(json!(1)));
        let keys: Vec<&String> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["a", "b"]);
        assert_eq!(m.get("a"), Some(&json!(9)));
    }

    #[test]
    fn empty_containers_print_compact() {
        assert_eq!(to_string_pretty(&json!({})).unwrap(), "{}");
        assert_eq!(to_string_pretty(&Value::Array(vec![])).unwrap(), "[]");
    }
}
