//! Round-trip tests for the JSON shapes the profile exporters and the
//! bench guard actually write: nested arrays of event objects, float
//! timestamps/durations, escaped strings, and null stats — plus a
//! seeded fuzz-ish sweep over randomly generated documents.

use serde_json::{json, Map, Value};

fn roundtrip(v: &Value) -> Value {
    let compact = serde_json::to_string(v).expect("serialize compact");
    let pretty = serde_json::to_string_pretty(v).expect("serialize pretty");
    let from_compact: Value = serde_json::from_str(&compact).expect("parse compact");
    let from_pretty: Value = serde_json::from_str(&pretty).expect("parse pretty");
    assert_eq!(from_compact, from_pretty, "pretty and compact disagree");
    from_compact
}

#[test]
fn chrome_trace_shape_round_trips() {
    let doc = json!({
        "traceEvents": [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1u64,
                "tid": 0u64,
                "args": { "name": "obs-thread-0" },
            },
            {
                "name": "knn.query",
                "cat": "trajsim",
                "ph": "X",
                "ts": 1786002277329891.5f64,
                "dur": 13454.006f64,
                "pid": 1u64,
                "tid": 0u64,
                "args": {
                    "level": "debug",
                    "engine": "2HE-HSR",
                    "database_size": 1000u64,
                    "pruned": 940u64,
                },
            },
            {
                "name": "note",
                "ph": "i",
                "s": "t",
                "ts": 12.25f64,
                "pid": 1u64,
                "tid": 3u64,
                "args": {},
            },
        ],
        "displayTimeUnit": "ms",
    });
    let back = roundtrip(&doc);
    assert_eq!(back, doc);
    let events = back.get("traceEvents").unwrap().as_array().unwrap();
    assert_eq!(events.len(), 3);
    assert_eq!(
        events[1].get("dur").and_then(Value::as_f64),
        Some(13454.006)
    );
    assert_eq!(
        events[1]
            .get("args")
            .and_then(|a| a.get("engine"))
            .and_then(Value::as_str),
        Some("2HE-HSR")
    );
}

#[test]
fn bench_guard_shape_round_trips_with_null_stats() {
    let doc = json!({
        "suite": "kernels",
        "anchor": "edr_256",
        "timestamp_unix_s": 1754438400u64,
        "runs_per_case": 5u64,
        "fingerprint": { "os": "linux", "arch": "x86_64", "threads": 8u64 },
        "cases": [
            {
                "name": "edr_128",
                "runs_s": [0.000061f64, 0.0000605f64, 0.0000625f64],
                "median_s": 0.000061f64,
                "mad_s": 0.0000005f64,
                "score": 0.246f64,
                "stats": Value::Null,
            },
        ],
    });
    let back = roundtrip(&doc);
    assert_eq!(back, doc);
    let case = &back.get("cases").unwrap().as_array().unwrap()[0];
    assert_eq!(case.get("stats"), Some(&Value::Null));
    let runs = case.get("runs_s").unwrap().as_array().unwrap();
    assert_eq!(runs.len(), 3);
    assert_eq!(runs[0].as_f64(), Some(0.000061));
}

#[test]
fn escaped_strings_survive_both_directions() {
    let nasty = "tab\there \"quotes\" back\\slash\nnewline \u{1F600} nul:\u{0} ctrl:\u{1B}";
    let doc = json!({ "name": nasty, "path": "thread-0;knn.query;knn.stage.refine" });
    let back = roundtrip(&doc);
    assert_eq!(back.get("name").and_then(Value::as_str), Some(nasty));
    // And parsing hand-written escapes produces the same value.
    let parsed: Value = serde_json::from_str("{\"name\": \"a\\tb\\\"c\\\\d\\ne\\u0041\"}").unwrap();
    assert_eq!(
        parsed.get("name").and_then(Value::as_str),
        Some("a\tb\"c\\d\neA")
    );
}

#[test]
fn float_extremes_round_trip_or_degrade_to_null() {
    for x in [0.0f64, -0.0, 1e-308, 1e308, 0.1 + 0.2, f64::MIN, f64::MAX] {
        let doc = json!({ "x": x });
        let back = roundtrip(&doc);
        assert_eq!(back.get("x").and_then(Value::as_f64), Some(x), "{x}");
    }
    // Non-finite floats cannot be represented in JSON; the vendored shim
    // (like real serde_json's to_value) maps them to null at From time.
    for x in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        assert_eq!(Value::from(x), Value::Null, "{x} should become null");
    }
}

/// A small deterministic LCG so the fuzz sweep needs no external crates
/// and reproduces exactly.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        // Numerical Recipes LCG constants.
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn pick(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A random JSON value of bounded depth: every scalar kind, strings with
/// escapes, nested arrays and objects — the grammar the profile and
/// bench files draw from.
fn random_value(rng: &mut Lcg, depth: u32) -> Value {
    let choice = if depth == 0 { rng.pick(5) } else { rng.pick(7) };
    match choice {
        0 => Value::Null,
        1 => Value::from(rng.pick(2) == 1),
        2 => Value::from(rng.next() as i64),
        3 => {
            // Finite floats only: ratios of u32-sized integers.
            let num = rng.pick(1 << 32) as f64 - (1u64 << 31) as f64;
            let den = (rng.pick(1 << 20) + 1) as f64;
            Value::from(num / den)
        }
        4 => {
            let alphabet = ["a", "β", "\"", "\\", "\n", "\t", ";", "🚀", "\u{7f}", " "];
            let len = rng.pick(12) as usize;
            let s: String = (0..len)
                .map(|_| alphabet[rng.pick(alphabet.len() as u64) as usize])
                .collect();
            Value::from(s)
        }
        5 => {
            let len = rng.pick(5) as usize;
            Value::Array((0..len).map(|_| random_value(rng, depth - 1)).collect())
        }
        _ => {
            let len = rng.pick(5) as usize;
            let mut m = Map::new();
            for i in 0..len {
                m.insert(
                    format!("k{}_{i}", rng.pick(100)),
                    random_value(rng, depth - 1),
                );
            }
            Value::Object(m)
        }
    }
}

#[test]
fn fuzzed_documents_round_trip() {
    let mut rng = Lcg(0x5EED_CAFE);
    for i in 0..500 {
        let doc = random_value(&mut rng, 4);
        let back = roundtrip(&doc);
        assert_eq!(back, doc, "iteration {i}: {doc:?}");
    }
}
