//! Offline stand-in for the [`rand_distr`](https://crates.io/crates/rand_distr)
//! crate: the [`Distribution`] trait and the [`Normal`] distribution, which
//! is all the trajsim data generators use.

#![forbid(unsafe_code)]

use rand::{Rng, RngCore};
use std::fmt;

/// Types that can draw samples of `T` from an RNG.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Invalid distribution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid distribution parameters")
    }
}

impl std::error::Error for Error {}

/// The normal (Gaussian) distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// A normal distribution with the given mean and standard deviation.
    ///
    /// # Errors
    ///
    /// Fails when either parameter is non-finite or `std_dev < 0`.
    pub fn new(mean: f64, std_dev: f64) -> Result<Normal, Error> {
        if mean.is_finite() && std_dev.is_finite() && std_dev >= 0.0 {
            Ok(Normal { mean, std_dev })
        } else {
            Err(Error)
        }
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box-Muller transform; the second variate is discarded because
        // `sample(&self)` has nowhere stateless to cache it.
        let u1: f64 = loop {
            let u = rng.gen_range(0.0..1.0f64);
            if u > 0.0 {
                break u;
            }
        };
        let u2 = unit(rng);
        let r = (-2.0 * u1.ln()).sqrt();
        self.mean + self.std_dev * r * (std::f64::consts::TAU * u2).cos()
    }
}

fn unit<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moments_are_approximately_right() {
        let normal = Normal::new(3.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, f64::INFINITY).is_err());
        assert!(Normal::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn zero_sigma_is_constant() {
        let normal = Normal::new(5.0, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10 {
            assert_eq!(normal.sample(&mut rng), 5.0);
        }
    }
}
