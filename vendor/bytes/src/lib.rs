//! Offline stand-in for the [`bytes`](https://crates.io/crates/bytes)
//! crate.
//!
//! Implements the subset the trajsim binary codec uses: [`BytesMut`] as a
//! growable little-endian writer (via [`BufMut`]), [`Bytes`] as a
//! consuming reader cursor (via [`Buf`]), and `Deref<Target = [u8]>` on
//! both. No shared-ownership slicing — `Bytes` here owns its buffer and
//! tracks a read cursor, which is all the codec needs.

#![forbid(unsafe_code)]

use std::ops::Deref;

/// Read access to a byte cursor.
pub trait Buf {
    /// Bytes not yet consumed.
    fn remaining(&self) -> usize;

    /// The unconsumed byte slice.
    fn chunk(&self) -> &[u8];

    /// Consumes `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics when fewer than `cnt` bytes remain.
    fn advance(&mut self, cnt: usize);

    /// `true` while any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies exactly `dst.len()` bytes out, consuming them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.remaining() >= dst.len(),
            "copy_to_slice out of bounds: {} > {}",
            dst.len(),
            self.remaining()
        );
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// Growable byte buffer for encoding.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Owned immutable bytes with a read cursor for decoding.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }
}

impl Bytes {
    /// Total length including already-consumed bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the buffer was empty to begin with.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(
            cnt <= self.remaining(),
            "advance out of bounds: {cnt} > {}",
            self.remaining()
        );
        self.pos += cnt;
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.chunk()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut w = BytesMut::with_capacity(32);
        w.put_slice(b"TRAJ");
        w.put_u8(7);
        w.put_u16_le(1234);
        w.put_u32_le(0xdead_beef);
        w.put_u64_le(u64::MAX - 3);
        w.put_f64_le(-2.5);
        assert_eq!(w.len(), 4 + 1 + 2 + 4 + 8 + 8);

        let mut r = Bytes::from(w.to_vec());
        let mut magic = [0u8; 4];
        r.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"TRAJ");
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 1234);
        assert_eq!(r.get_u32_le(), 0xdead_beef);
        assert_eq!(r.get_u64_le(), u64::MAX - 3);
        assert_eq!(r.get_f64_le(), -2.5);
        assert!(!r.has_remaining());
    }

    #[test]
    fn deref_exposes_written_bytes() {
        let mut w = BytesMut::new();
        w.put_u16_le(0x0201);
        let slice: &[u8] = &w;
        assert_eq!(slice, &[0x01, 0x02]);
        assert_eq!(&*w.freeze(), &[0x01, 0x02]);
    }

    #[test]
    fn cursor_tracks_remaining() {
        let mut r = Bytes::from(vec![1u8, 2, 3, 4]);
        assert_eq!(r.remaining(), 4);
        r.get_u8();
        assert_eq!(r.remaining(), 3);
        assert_eq!(&*r, &[2, 3, 4]);
        r.advance(3);
        assert!(!r.has_remaining());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn over_read_panics() {
        let mut r = Bytes::from(vec![1u8]);
        let _ = r.get_u16_le();
    }
}
