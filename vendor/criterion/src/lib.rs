//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Implements the subset the trajsim bench targets use: benchmark groups,
//! [`BenchmarkId`], `bench_function` / `bench_with_input`, `Bencher::iter`,
//! `sample_size`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Honors cargo's harness contract for `harness = false` targets:
//!
//! - `cargo bench` passes `--bench` → full measurement (warm-up, then
//!   `sample_size` timed samples; mean/median/min reported in ns/iter);
//! - `cargo test` passes no `--bench` → test mode, each benchmark body
//!   runs exactly once so the suite stays fast and still smoke-tests the
//!   benchmark code;
//! - a bare positional argument filters benchmarks by substring.
//!
//! When `TRAJSIM_CRITERION_JSON` names a file, measured results are also
//! written there as JSON (used to commit baselines under `results/`).

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Re-export so user code can `use criterion::black_box` if it wants;
/// the std version is the canonical one.
pub use std::hint::black_box;

/// One measured benchmark outcome, in nanoseconds per iteration.
#[derive(Debug, Clone)]
struct Record {
    group: String,
    bench: String,
    mean_ns: f64,
    median_ns: f64,
    min_ns: f64,
    samples: usize,
    iters_per_sample: u64,
}

/// The harness entry point; one per process, created by
/// [`criterion_main!`].
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
    records: Vec<Record>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: true,
            filter: None,
            records: Vec::new(),
        }
    }
}

impl Criterion {
    /// Applies cargo's command-line contract (see crate docs).
    pub fn configure_from_args(mut self) -> Self {
        let mut bench_flag = false;
        let mut filter = None;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--bench" => bench_flag = true,
                // Flags cargo's test runner may pass; those that take a
                // value consume it.
                "--color" | "--format" | "--logfile" | "--skip" | "-Z" => {
                    let _ = args.next();
                }
                a if a.starts_with("--") => {}
                a => filter = Some(a.to_string()),
            }
        }
        self.test_mode = !bench_flag;
        self.filter = filter;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    fn finalize(&mut self) {
        if self.test_mode || self.records.is_empty() {
            return;
        }
        if let Ok(path) = std::env::var("TRAJSIM_CRITERION_JSON") {
            let mut root = serde_json::Map::new();
            for r in &self.records {
                let entry = serde_json::json!({
                    "mean_ns": r.mean_ns,
                    "median_ns": r.median_ns,
                    "min_ns": r.min_ns,
                    "samples": r.samples,
                    "iters_per_sample": r.iters_per_sample,
                });
                match root.get(&r.group) {
                    Some(serde_json::Value::Object(_)) => {}
                    _ => {
                        root.insert(
                            r.group.clone(),
                            serde_json::Value::Object(serde_json::Map::new()),
                        );
                    }
                }
                // Rebuild the group map with the new entry (Map exposes
                // no get_mut; groups are small so this stays cheap).
                if let Some(serde_json::Value::Object(group_map)) = root.get(&r.group) {
                    let mut updated = group_map.clone();
                    updated.insert(r.bench.clone(), entry);
                    root.insert(r.group.clone(), serde_json::Value::Object(updated));
                }
            }
            let text = serde_json::to_string_pretty(&serde_json::Value::Object(root))
                .expect("criterion json");
            if let Err(e) = std::fs::write(&path, text + "\n") {
                eprintln!("criterion: cannot write {path}: {e}");
            } else {
                eprintln!("criterion: results written to {path}");
            }
        }
    }
}

/// A set of benchmarks sharing a name prefix and sample settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Registers and (unless filtered out) runs a benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let bench_name = id.into_benchmark_id();
        self.run(bench_name, |b| f(b));
        self
    }

    /// Like [`Self::bench_function`], threading `input` through to the
    /// closure.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let bench_name = id.into_benchmark_id();
        self.run(bench_name, |b| f(b, input));
        self
    }

    /// Ends the group. (Reports are emitted per-benchmark as they run.)
    pub fn finish(self) {}

    fn run<F: FnMut(&mut Bencher)>(&mut self, bench_name: String, mut f: F) {
        let full = format!("{}/{}", self.name, bench_name);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        if self.criterion.test_mode {
            let mut b = Bencher {
                mode: Mode::TestOnce,
                sample_ns: Vec::new(),
                iters_per_sample: 1,
            };
            f(&mut b);
            println!("test {full} ... ok");
            return;
        }

        // Calibration: find an iteration count putting one sample at
        // roughly `SAMPLE_TARGET`.
        const SAMPLE_TARGET: Duration = Duration::from_millis(10);
        let mut calib = Bencher {
            mode: Mode::Measure,
            sample_ns: Vec::new(),
            iters_per_sample: 1,
        };
        let mut iters = 1u64;
        loop {
            calib.iters_per_sample = iters;
            calib.sample_ns.clear();
            f(&mut calib);
            let sample = Duration::from_nanos(*calib.sample_ns.last().unwrap_or(&0));
            if sample >= SAMPLE_TARGET || iters >= 1 << 30 {
                break;
            }
            let scale =
                (SAMPLE_TARGET.as_nanos() as f64 / sample.as_nanos().max(1) as f64).min(1024.0);
            iters = ((iters as f64 * scale).ceil() as u64).max(iters * 2);
        }

        let mut b = Bencher {
            mode: Mode::Measure,
            sample_ns: Vec::new(),
            iters_per_sample: iters,
        };
        // Warm-up sample, discarded.
        f(&mut b);
        b.sample_ns.clear();
        for _ in 0..self.sample_size {
            f(&mut b);
        }

        let mut per_iter: Vec<f64> = b
            .sample_ns
            .iter()
            .map(|&ns| ns as f64 / iters as f64)
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let min = per_iter.first().copied().unwrap_or(0.0);
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;

        let mut line = String::new();
        let _ = write!(
            line,
            "{full:<48} mean {:>12} median {:>12} min {:>12} ({} samples x {} iters)",
            fmt_ns(mean),
            fmt_ns(median),
            fmt_ns(min),
            per_iter.len(),
            iters
        );
        println!("{line}");

        self.criterion.records.push(Record {
            group: self.name.clone(),
            bench: bench_name,
            mean_ns: mean,
            median_ns: median,
            min_ns: min,
            samples: per_iter.len(),
            iters_per_sample: iters,
        });
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

enum Mode {
    TestOnce,
    Measure,
}

/// Passed to benchmark closures; its [`iter`](Bencher::iter) method times
/// the routine.
pub struct Bencher {
    mode: Mode,
    sample_ns: Vec<u64>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, keeping its return value alive via
    /// [`black_box`].
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            Mode::TestOnce => {
                black_box(routine());
            }
            Mode::Measure => {
                let start = Instant::now();
                for _ in 0..self.iters_per_sample {
                    black_box(routine());
                }
                self.sample_ns.push(start.elapsed().as_nanos() as u64);
            }
        }
    }
}

/// A benchmark name with an attached parameter, printed as
/// `name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just `parameter` (for groups whose name carries the function).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// The display name.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Bundles benchmark functions into a runner, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generates `main` running one or more [`criterion_group!`] bundles.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $group(&mut c); )+
            $crate::__finalize(&mut c);
        }
    };
}

#[doc(hidden)]
pub fn __finalize(c: &mut Criterion) {
    c.finalize();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 50u64), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn test_mode_runs_each_bench_once() {
        let mut c = Criterion::default();
        assert!(c.test_mode);
        sample_bench(&mut c);
        assert!(c.records.is_empty());
    }

    #[test]
    fn measure_mode_records_results() {
        let mut c = Criterion {
            test_mode: false,
            filter: None,
            records: Vec::new(),
        };
        sample_bench(&mut c);
        assert_eq!(c.records.len(), 2);
        assert_eq!(c.records[0].group, "shim");
        assert_eq!(c.records[0].bench, "sum");
        assert_eq!(c.records[1].bench, "sum_to/50");
        assert!(c.records.iter().all(|r| r.mean_ns > 0.0));
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            test_mode: false,
            filter: Some("sum_to".into()),
            records: Vec::new(),
        };
        sample_bench(&mut c);
        assert_eq!(c.records.len(), 1);
        assert_eq!(c.records[0].bench, "sum_to/50");
    }
}
