//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! Implements the subset the trajsim test suites use: the [`proptest!`]
//! macro (with an optional `#![proptest_config(...)]` header),
//! [`ProptestConfig::with_cases`], numeric range strategies, tuple
//! strategies, [`collection::vec`], [`array::uniform2`], and the
//! `prop_assert!` / `prop_assert_eq!` assertions.
//!
//! Differences from real proptest, deliberate for simplicity:
//!
//! - cases are sampled from a deterministic per-test RNG (seeded from the
//!   test's source location, overridable with `PROPTEST_SEED`), so runs
//!   are reproducible;
//! - there is no shrinking — a failing case reports its exact inputs
//!   instead;
//! - `prop_assert!` panics immediately rather than returning `Err`.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::ops::Range;

/// Per-test configuration; only the number of cases is configurable.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the suite fast while
        // still exercising a healthy spread of inputs.
        ProptestConfig { cases: 64 }
    }
}

/// Test-runner plumbing used by the generated test bodies.
pub mod test_runner {
    use super::*;

    /// The deterministic RNG driving a property test.
    #[derive(Debug, Clone)]
    pub struct TestRng(pub(crate) StdRng);

    impl TestRng {
        /// An RNG seeded from the test's source location (stable across
        /// runs) unless `PROPTEST_SEED` overrides it.
        pub fn for_test(file: &str, line: u32) -> Self {
            let seed = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| {
                    let mut h = 0xcbf2_9ce4_8422_2325u64;
                    for b in file.bytes().chain(line.to_le_bytes()) {
                        h ^= u64::from(b);
                        h = h.wrapping_mul(0x1000_0000_01b3);
                    }
                    h
                });
            TestRng(StdRng::seed_from_u64(seed))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Prints the failing inputs if the test body panics.
    pub struct FailureReporter {
        pub case: u32,
        pub inputs: String,
        pub armed: bool,
    }

    impl Drop for FailureReporter {
        fn drop(&mut self) {
            if self.armed && std::thread::panicking() {
                eprintln!(
                    "proptest: case {} failed with inputs: {}",
                    self.case, self.inputs
                );
            }
        }
    }
}

/// Strategies: value generators sampled once per case.
pub mod strategy {
    use super::*;

    /// A generator of values of type `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut test_runner::TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut test_runner::TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),+ $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut test_runner::TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut test_runner::TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )+};
    }

    range_strategy!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut test_runner::TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy!(
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
    );
}

/// `proptest::collection` — collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::*;

    /// Strategy for `Vec`s with lengths drawn from `len` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut test_runner::TestRng) -> Self::Value {
            let n = if self.len.start + 1 == self.len.end {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// `proptest::array` — fixed-size array strategies.
pub mod array {
    use super::strategy::Strategy;
    use super::*;

    /// Strategy for `[T; 2]` with both elements drawn from `element`.
    pub fn uniform2<S: Strategy>(element: S) -> Uniform2<S> {
        Uniform2(element)
    }

    /// See [`uniform2`].
    #[derive(Debug, Clone)]
    pub struct Uniform2<S>(S);

    impl<S: Strategy> Strategy for Uniform2<S> {
        type Value = [S::Value; 2];
        fn sample(&self, rng: &mut test_runner::TestRng) -> Self::Value {
            [self.0.sample(rng), self.0.sample(rng)]
        }
    }
}

/// The commonly glob-imported surface.
pub mod prelude {
    /// `prop::collection::vec`, `prop::array::uniform2`, … — the crate
    /// root doubles as the `prop` module.
    pub use crate as prop;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(file!(), line!());
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&$strat, &mut __rng);)+
                let mut __reporter = $crate::test_runner::FailureReporter {
                    case: __case,
                    inputs: format!(
                        concat!($("\n  ", stringify!($arg), " = {:?}",)+),
                        $(&$arg,)+
                    ),
                    armed: true,
                };
                { $body }
                __reporter.armed = false;
            }
        }
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_sample_within_bounds() {
        let mut rng = crate::test_runner::TestRng::for_test("x", 1);
        for _ in 0..200 {
            let v = Strategy::sample(&(0usize..5), &mut rng);
            assert!(v < 5);
            let (a, b) = Strategy::sample(&(-1.0..1.0f64, 0u8..4), &mut rng);
            assert!((-1.0..1.0).contains(&a) && b < 4);
            let xs = Strategy::sample(&prop::collection::vec(0i32..3, 2..6), &mut rng);
            assert!((2..6).contains(&xs.len()));
            assert!(xs.iter().all(|&x| (0..3).contains(&x)));
            let [p, q] = Strategy::sample(&prop::array::uniform2(0.0..9.0f64), &mut rng);
            assert!((0.0..9.0).contains(&p) && (0.0..9.0).contains(&q));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_runnable_tests(
            a in 0usize..10,
            b in prop::collection::vec((-1.0..1.0f64, -1.0..1.0f64), 0..5),
        ) {
            prop_assert!(a < 10);
            prop_assert_eq!(b.len(), b.len());
        }
    }

    proptest! {
        #[test]
        fn default_config_also_works(x in 0u64..100) {
            prop_assert!(x < 100);
        }
    }
}
