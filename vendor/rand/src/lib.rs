//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no registry access, so this crate implements
//! exactly the API surface the trajsim workspace uses: the [`Rng`] /
//! [`RngCore`] / [`SeedableRng`] traits, [`rngs::StdRng`], `gen_range`
//! over half-open and inclusive integer/float ranges, and `gen_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than the real `rand`'s ChaCha12-based `StdRng`, but every use in
//! the workspace only requires determinism per seed, not a specific
//! stream.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Minimal core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniformly distributed 64-bit word.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Ra>(&mut self, range: Ra) -> T
    where
        T: SampleUniform,
        Ra: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding interface; only the `seed_from_u64` entry point is used.
pub trait SeedableRng: Sized {
    /// A generator deterministically derived from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Maps a uniform `u64` to a uniform `f64` in `[0, 1)` (53 bits).
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Marker for the element types [`Rng::gen_range`] can produce. Mirrors
/// the real crate's trait of the same name; the bound is what lets type
/// inference settle unannotated float literals in `gen_range(0.1..0.3)`.
pub trait SampleUniform {}

macro_rules! impl_sample_uniform {
    ($($t:ty),+ $(,)?) => {$( impl SampleUniform for $t {} )+};
}

impl_sample_uniform!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can produce one uniform sample.
pub trait SampleRange<T> {
    /// Draws one sample; panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = unit_f64(rng.next_u64());
        let v = self.start + u * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let v: f64 = (f64::from(self.start)..f64::from(self.end)).sample_single(rng);
        v as f32
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        // Continuous range: the closed upper endpoint has measure zero,
        // so sampling the half-open interval is an adequate stand-in
        // (and exact when lo == hi).
        if lo == hi {
            lo
        } else {
            (lo..hi).sample_single(rng)
        }
    }
}

impl SampleRange<f32> for RangeInclusive<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let v: f64 = (f64::from(*self.start())..=f64::from(*self.end())).sample_single(rng);
        v as f32
    }
}

/// Uniform integer in `[0, span)` via 128-bit widening multiply with
/// rejection of the biased zone (Lemire's method).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = u128::from(x) * u128::from(span);
        let low = m as u64;
        if low >= span.wrapping_neg() % span {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty => $wide:ty),+ $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                let off = uniform_below(rng, span);
                ((self.start as $wide).wrapping_add(off as $wide)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = uniform_below(rng, span + 1);
                ((lo as $wide).wrapping_add(off as $wide)) as $t
            }
        }
    )+};
}

impl_int_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator, seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the standard xoshiro seeding recipe.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same: usize = (0..100)
            .filter(|_| a.gen_range(0u64..1000) == c.gen_range(0u64..1000))
            .count();
        assert!(same < 10, "different seeds should diverge");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-3..7i32);
            assert!((-3..7).contains(&v));
            let v = rng.gen_range(5..=9usize);
            assert!((5..=9).contains(&v));
            let f = rng.gen_range(-2.5..2.5f64);
            assert!((-2.5..2.5).contains(&f));
        }
    }

    #[test]
    fn integer_sampling_covers_the_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_probability_is_sane() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> usize {
            rng.gen_range(0..4usize)
        }
        let mut rng = StdRng::seed_from_u64(4);
        let dynrng: &mut StdRng = &mut rng;
        assert!(draw(dynrng) < 4);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = rng.gen_range(5..5usize);
    }
}
