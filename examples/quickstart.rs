//! Quickstart: the paper's worked example (§2), then a first k-NN search.
//!
//! Run with: `cargo run --release --example quickstart`

use trajsim::prelude::*;

fn main() {
    // --- The worked example of §2 -----------------------------------
    // Four 1-d trajectories. S and P are Q with noise spikes inserted;
    // R is genuinely different.
    let q = Trajectory1::from_values(&[1.0, 2.0, 3.0, 4.0]);
    let r = Trajectory1::from_values(&[10.0, 9.0, 8.0, 7.0]);
    let s = Trajectory1::from_values(&[1.0, 100.0, 2.0, 3.0, 4.0]);
    let p = Trajectory1::from_values(&[1.0, 100.0, 101.0, 2.0, 4.0]);
    let eps = MatchThreshold::new(1.0).unwrap();

    println!("EDR distances to Q (eps = 1):");
    println!("  S (one noise spike):    {}", edr(&q, &s, eps));
    println!("  P (longer noise gap):   {}", edr(&q, &p, eps));
    println!("  R (different movement): {}", edr(&q, &r, eps));
    println!("  -> EDR ranks S, P, R: robust to the noise, sensitive to the gap.");

    println!("\nThe noise-sensitive baselines rank R first (fooled by the spikes):");
    println!(
        "  Euclidean(Q, R) = {:.1} < Euclidean(Q, S) = {:.1}",
        euclidean_sliding(&q, &r),
        euclidean_sliding(&q, &s)
    );
    println!(
        "  DTW(Q, R)       = {:.1} < DTW(Q, S)       = {:.1}",
        dtw(&q, &r),
        dtw(&q, &s)
    );
    println!(
        "  ERP(Q, R)       = {:.1} < ERP(Q, S)       = {:.1}",
        erp(&q, &r),
        erp(&q, &s)
    );

    // --- A first 2-d k-NN search ------------------------------------
    // A tiny database of 2-d trajectories; normalization makes the
    // search invariant to spatial scaling and shifting (§2).
    let database: Dataset<2> = vec![
        Trajectory2::from_xy(&[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0), (3.0, 3.0)]),
        Trajectory2::from_xy(&[(0.0, 0.0), (1.1, 0.9), (2.0, 2.1), (3.0, 3.0)]),
        Trajectory2::from_xy(&[(3.0, 0.0), (2.0, 1.0), (1.0, 2.0), (0.0, 3.0)]),
        Trajectory2::from_xy(&[(0.0, 0.0), (0.0, 1.0), (0.0, 2.0), (0.0, 3.0)]),
    ]
    .into_iter()
    .collect::<Dataset<2>>()
    .normalize();

    let query =
        Trajectory2::from_xy(&[(10.0, 10.0), (11.0, 11.0), (12.0, 12.0), (13.0, 13.0)]).normalize(); // same diagonal shape as ids 0 and 1, elsewhere in space

    let eps2 = MatchThreshold::new(0.25).unwrap();
    let scan = SequentialScan::new(&database, eps2);
    let result = scan.knn(&query, 2);
    println!("\n2-NN of the diagonal query (after normalization):");
    for n in &result.neighbors {
        println!("  trajectory {} at EDR distance {}", n.id, n.dist);
    }
    assert_eq!(
        result.neighbors[0].dist, 0,
        "the identical shape matches exactly"
    );
}
