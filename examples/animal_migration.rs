//! Animal migration mining (§1's motivating application): discover
//! migration pattern groups by hierarchical clustering under EDR, and
//! check the grouping against the (here, known) ground truth — the
//! methodology of the paper's Table 1.
//!
//! Run with: `cargo run --release --example animal_migration`

use trajsim::eval::{agglomerative, partition_matches_labels, DistanceMatrix, Linkage};
use trajsim::prelude::*;

fn main() {
    // Synthesize three herds, each following its own migration corridor,
    // tracked at different sampling rates (=> different lengths, local
    // time shifting) with sensor noise.
    let herds = trajsim::data::labeled_set(
        &mut trajsim::data::seeded_rng(2026),
        &trajsim::data::LabeledSetConfig {
            classes: 3,
            per_class: 8,
            len_range: (80, 160),
            waypoints: 6,
            warp_strength: 0.6,
            jitter_sigma: 2.0,
            trim_frac: 0.1,
            base_shapes: 0,
        },
    )
    .normalize();

    let eps = MatchThreshold::quarter_of_max_std(
        trajsim::core::max_std_dev(herds.dataset().trajectories()).unwrap(),
    )
    .unwrap();
    println!(
        "{} tracked animals, {} herds, eps = {:.3}",
        herds.len(),
        herds.num_classes(),
        eps.value()
    );

    // Pairwise EDR distances, then complete-linkage clustering into the
    // number of herds.
    let matrix = DistanceMatrix::compute(herds.dataset(), &trajsim::distance::Measure::Edr { eps });
    let assignment = agglomerative(&matrix, herds.num_classes(), Linkage::Complete);

    println!("\ncluster assignment per animal (ground-truth herd in parens):");
    for (i, (&cluster, &herd)) in assignment.iter().zip(herds.labels()).enumerate() {
        print!("  animal {i:>2}: cluster {cluster} (herd {herd})");
        if (i + 1) % 3 == 0 {
            println!();
        }
    }
    println!();

    // Score each herd pair like Table 1 does.
    let (correct, total) =
        trajsim::eval::correct_pair_partitions(&herds, &trajsim::distance::Measure::Edr { eps });
    println!("\ncorrectly separated herd pairs under EDR: {correct}/{total}");

    // Sanity: each herd is internally consistent (2-cluster split of any
    // pair of herds recovers the herds).
    let pair = herds.class_pair(0, 1).unwrap();
    let m = DistanceMatrix::compute(pair.dataset(), &trajsim::distance::Measure::Edr { eps });
    let split = agglomerative(&m, 2, Linkage::Complete);
    assert!(
        partition_matches_labels(&split, pair.labels()),
        "herds 0 and 1 should separate cleanly"
    );
    println!("herds 0 and 1 separate cleanly under complete linkage + EDR.");
}
