//! Sub-trajectory pattern search: find where a short query maneuver
//! occurs *inside* long tracks — the approximate-string-matching setting
//! the paper's Q-gram machinery descends from (§4.1), applied to
//! movement data with semi-global EDR.
//!
//! Run with: `cargo run --release --example maneuver_search`

use trajsim::data::{seeded_rng, smooth_template};
use trajsim::distance::edr_find_matches;
use trajsim::prelude::*;

fn main() {
    let mut rng = seeded_rng(31);
    const AREA: (f64, f64, f64, f64) = (0.0, 100.0, 0.0, 100.0);

    // A distinctive maneuver: a tight loop, 40 samples long.
    let maneuver: Trajectory2 = (0..40)
        .map(|i| {
            let theta = i as f64 / 39.0 * std::f64::consts::TAU;
            trajsim::core::Point2::xy(50.0 + 8.0 * theta.cos(), 50.0 + 8.0 * theta.sin())
        })
        .collect();

    // Three long patrol tracks; the maneuver is spliced into two of them
    // at known offsets (with a bit of jitter).
    let mut tracks = Vec::new();
    let mut truth = Vec::new();
    for (i, splice_at) in [Some(200usize), None, Some(415)].iter().enumerate() {
        let mut base = smooth_template(&mut rng, 10, 600, AREA).into_points();
        if let Some(at) = splice_at {
            for (j, p) in maneuver.iter().enumerate() {
                use rand::Rng;
                base[at + j] = trajsim::core::Point2::xy(
                    p.x() + rng.gen_range(-0.2..0.2),
                    p.y() + rng.gen_range(-0.2..0.2),
                );
            }
        }
        tracks.push(Trajectory2::new(base));
        truth.push((i, *splice_at));
    }

    let eps = MatchThreshold::new(1.0).unwrap();
    let budget = maneuver.len() / 5; // allow 20% of the maneuver to be edited

    println!(
        "searching {} tracks for the loop maneuver (budget {budget} edits):",
        tracks.len()
    );
    for (i, track) in tracks.iter().enumerate() {
        let matches = edr_find_matches(track, &maneuver, eps, budget);
        match matches.as_slice() {
            [] => println!("  track {i}: no occurrence"),
            ms => {
                for m in ms {
                    println!(
                        "  track {i}: maneuver at samples [{}, {}) with {} edits",
                        m.start, m.end, m.dist
                    );
                }
            }
        }
        // Cross-check against the ground truth.
        match truth[i].1 {
            Some(at) => {
                let hit = matches.iter().any(|m| m.start.abs_diff(at) <= 5);
                assert!(hit, "track {i}: spliced maneuver at {at} was missed");
            }
            None => assert!(matches.is_empty(), "track {i}: spurious match {matches:?}"),
        }
    }
    println!("all spliced occurrences found, no spurious matches.");
}
