//! Store-surveillance retrieval (§1's motivating application): customer
//! tracks extracted from video come with detection glitches — outlier
//! positions from failed detections and local time shifting from frame
//! drops. This example shows (a) EDR ranking surviving the corruption
//! that fools the noise-sensitive baselines, and (b) a range query
//! ("every track within 12 edits of this one") answered with the
//! Theorem 1 / Theorem 6 filters.
//!
//! Run with: `cargo run --release --example video_surveillance`

use trajsim::data::{corrupt, seeded_rng, smooth_template, CorruptionConfig};
use trajsim::distance::{Measure, TrajectoryMeasure};
use trajsim::prelude::*;
use trajsim::prune::range_query;

fn main() {
    let mut rng = seeded_rng(99);
    const SHOP: (f64, f64, f64, f64) = (0.0, 40.0, 0.0, 25.0);

    // Three "real" customer paths through the shop...
    let to_checkout = smooth_template(&mut rng, 5, 120, SHOP);
    let browse_aisles = smooth_template(&mut rng, 9, 150, SHOP);
    let window_shopper = smooth_template(&mut rng, 4, 90, SHOP);

    // ...observed repeatedly through a glitchy tracker.
    let cfg = CorruptionConfig::default();
    let mut tracks: Vec<Trajectory2> = Vec::new();
    let mut labels: Vec<&str> = Vec::new();
    for _ in 0..6 {
        tracks.push(corrupt(&mut rng, &to_checkout, &cfg));
        labels.push("to-checkout");
        tracks.push(corrupt(&mut rng, &browse_aisles, &cfg));
        labels.push("browse-aisles");
        tracks.push(corrupt(&mut rng, &window_shopper, &cfg));
        labels.push("window-shopper");
    }
    let database: Dataset<2> = tracks.into_iter().collect::<Dataset<2>>().normalize();

    // Query: a fresh, also-glitchy observation of the checkout path.
    let query = corrupt(&mut rng, &to_checkout, &cfg).normalize();
    let sigma = trajsim::core::max_std_dev(database.trajectories()).unwrap();
    let eps = MatchThreshold::quarter_of_max_std(sigma).unwrap();

    // Rank the whole database under each measure; count how many of the
    // top-6 results are actually checkout paths.
    println!("top-6 precision for a noisy 'to-checkout' query:");
    for measure in Measure::lineup(eps) {
        let mut scored: Vec<(f64, usize)> = database
            .iter()
            .map(|(id, t)| (measure.distance(&query, t), id))
            .collect();
        scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        let hits = scored
            .iter()
            .take(6)
            .filter(|&&(_, id)| labels[id] == "to-checkout")
            .count();
        println!(
            "  {:>4}: {hits}/6 correct (best match: track {} = {})",
            TrajectoryMeasure::<2>::name(&measure),
            scored[0].1,
            labels[scored[0].1]
        );
    }

    // Range query: all tracks within a fixed edit budget of the query.
    let budget = query.len() / 4;
    let hits = range_query(&database, eps, &query, budget, 1);
    println!("\ntracks within {budget} edit operations of the query:");
    for h in &hits {
        println!("  track {:>2} ({}) at EDR {}", h.id, labels[h.id], h.dist);
    }
    assert!(
        hits.iter().all(|h| labels[h.id] == "to-checkout"),
        "a quarter-length edit budget should only admit checkout tracks"
    );
}
