//! Sports analytics (§1's motivating application): find hockey players
//! whose movement patterns resemble a coach's query pattern, using the
//! paper's best retrieval configuration — the 1HPN combined engine
//! (1-d histograms → mean-value q-grams → near triangle inequality).
//!
//! Run with: `cargo run --release --example sports_analytics`

use std::time::Instant;
use trajsim::prelude::*;

fn main() {
    // 2 000 rink-bounded player shifts, lengths 30-256 (the NHL workload
    // of §5.4), normalized so similarity is about movement *shape*.
    let n = 2_000;
    println!("generating {n} player trajectories...");
    let database = trajsim::data::nhl_like(7, n).normalize();
    let sigma = trajsim::core::max_std_dev(database.trajectories()).unwrap();
    let eps = MatchThreshold::new(2.0 * sigma).unwrap();

    // The query: one player's shift, as a "find me more like this".
    let query = database.trajectories()[123].clone();

    // Brute force first.
    let scan = SequentialScan::new(&database, eps);
    let t0 = Instant::now();
    let truth = scan.knn(&query, 10);
    let scan_time = t0.elapsed();

    // The combined engine. Building it computes the q-gram means, the
    // per-dimension histograms, and the 400-reference pmatrix — the
    // offline cost the paper also pays once per database.
    println!("building 1HPN engine (histograms + q-grams + pmatrix)...");
    let t0 = Instant::now();
    let config = trajsim::prune::CombinedConfig {
        max_triangle: 100, // keep the example's offline phase short
        ..Default::default()
    };
    let engine = CombinedKnn::build(&database, eps, config);
    println!("  built in {:.1?}", t0.elapsed());

    let t0 = Instant::now();
    let fast = engine.knn(&query, 10);
    let fast_time = t0.elapsed();

    assert_eq!(
        fast.distances(),
        truth.distances(),
        "no false dismissals — the §4 guarantee"
    );

    println!("\n10 most similar player shifts (query = player 123):");
    for n in &fast.neighbors {
        let t = database.trajectories()[n.id].clone();
        println!(
            "  player {:>4}: EDR {:>3}, {} samples",
            n.id,
            n.dist,
            t.len()
        );
    }
    println!(
        "\nsequential scan: {scan_time:.1?}; 1HPN: {fast_time:.1?} \
         (pruned {:.0}% of the database: {} histogram, {} q-gram, {} near-triangle)",
        fast.stats.pruning_power() * 100.0,
        fast.stats.pruned_by_histogram,
        fast.stats.pruned_by_qgram,
        fast.stats.pruned_by_triangle,
    );
}
