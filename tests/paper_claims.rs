//! The paper's headline claims, each as an executable test against the
//! public API: the worked-example rankings of §2–3.1, the robustness
//! comparison of §3.2, and the theorem statements of §4 on realistic
//! (corrupted, variable-length) data rather than the unit tests' toy
//! inputs.

use trajsim::data::{corrupt, seeded_rng, CorruptionConfig};
use trajsim::distance::{dtw, erp, euclidean_sliding, lcss, Measure, TrajectoryMeasure};
use trajsim::histogram::{histogram_distance, histogram_distance_quick, TrajectoryHistogram};
use trajsim::prelude::*;
use trajsim::qgram::{min_common_qgrams, SortedMeans};

fn worked_example() -> (Trajectory1, Trajectory1, Trajectory1, Trajectory1) {
    (
        Trajectory1::from_values(&[1.0, 2.0, 3.0, 4.0]),
        Trajectory1::from_values(&[10.0, 9.0, 8.0, 7.0]),
        Trajectory1::from_values(&[1.0, 100.0, 2.0, 3.0, 4.0]),
        Trajectory1::from_values(&[1.0, 100.0, 101.0, 2.0, 4.0]),
    )
}

/// §2: "Euclidean distance ranks the three trajectories as R, S, P. DTW
/// and ERP produce the same rank" — the noise-sensitivity critique.
#[test]
fn noise_sensitive_measures_rank_r_first() {
    let (q, r, s, p) = worked_example();
    for (name, d) in [
        (
            "Eu",
            [
                euclidean_sliding(&q, &r),
                euclidean_sliding(&q, &s),
                euclidean_sliding(&q, &p),
            ],
        ),
        ("DTW", [dtw(&q, &r), dtw(&q, &s), dtw(&q, &p)]),
        ("ERP", [erp(&q, &r), erp(&q, &s), erp(&q, &p)]),
    ] {
        assert!(
            d[0] < d[1] && d[1] < d[2],
            "{name} should rank R, S, P: {d:?}"
        );
    }
}

/// §3.1: "the similarity ranking relative to Q with EDR (ε = 1) is
/// S, P, R, which is the expected result."
#[test]
fn edr_ranks_s_p_r() {
    let (q, r, s, p) = worked_example();
    let eps = MatchThreshold::new(1.0).unwrap();
    let (ds, dp, dr) = (edr(&q, &s, eps), edr(&q, &p, eps), edr(&q, &r, eps));
    assert!(
        ds < dp && dp < dr,
        "expected S < P < R, got {ds}, {dp}, {dr}"
    );
}

/// §2's LCSS critique, as a constructed pair: same common subsequence,
/// different gap sizes — LCSS ties, EDR separates.
#[test]
fn lcss_is_gap_blind_and_edr_is_not() {
    let q = Trajectory1::from_values(&[1.0, 2.0, 3.0, 4.0]);
    let short_gap = Trajectory1::from_values(&[1.0, 50.0, 2.0, 3.0, 4.0]);
    let long_gap = Trajectory1::from_values(&[1.0, 50.0, 60.0, 70.0, 80.0, 2.0, 3.0, 4.0]);
    let eps = MatchThreshold::new(0.25).unwrap();
    assert_eq!(lcss(&q, &short_gap, eps), lcss(&q, &long_gap, eps));
    assert!(edr(&q, &short_gap, eps) < edr(&q, &long_gap, eps));
}

/// §3.2's robustness claim on realistic data: corrupt a trajectory with
/// the paper's noise + time-shift model; its EDR distance to the clean
/// original must stay below the distance to a genuinely different
/// trajectory, for many seeds.
#[test]
fn edr_is_robust_to_the_papers_corruption_model() {
    let mut wins = 0;
    let trials = 30;
    for seed in 0..trials {
        let mut rng = seeded_rng(seed);
        let base = trajsim::data::smooth_template(&mut rng, 6, 100, (0.0, 100.0, 0.0, 100.0));
        let other = trajsim::data::smooth_template(&mut rng, 6, 100, (0.0, 100.0, 0.0, 100.0));
        let noisy = corrupt(&mut rng, &base, &CorruptionConfig::default());
        let (b, o, n) = (base.normalize(), other.normalize(), noisy.normalize());
        let eps = MatchThreshold::new(0.25).unwrap();
        if edr(&b, &n, eps) < edr(&b, &o, eps) {
            wins += 1;
        }
    }
    assert!(
        wins >= trials - 2,
        "EDR matched the corrupted original in only {wins}/{trials} trials"
    );
}

/// Theorem 1 via Theorem 2 (the actual filter the engines run): the
/// matching mean-value q-gram count between corrupted real-shaped
/// trajectories never undercuts the Theorem 1 bound at k = EDR.
#[test]
fn qgram_count_bound_holds_on_corrupted_data() {
    for seed in 0..20 {
        let mut rng = seeded_rng(seed);
        let base = trajsim::data::smooth_template(&mut rng, 5, 60, (0.0, 50.0, 0.0, 50.0));
        let noisy = corrupt(&mut rng, &base, &CorruptionConfig::default());
        let (b, n) = (base.normalize(), noisy.normalize());
        let eps = MatchThreshold::new(0.5).unwrap();
        let k = edr(&b, &n, eps);
        for q in 1..=3 {
            let count = SortedMeans::build(&b, q).match_count(&SortedMeans::build(&n, q), eps);
            let bound = min_common_qgrams(b.len(), n.len(), q, k);
            assert!(
                count as i64 >= bound,
                "seed {seed} q {q}: count {count} < bound {bound} (k = {k})"
            );
        }
    }
}

/// Theorem 6 (and the quick variant) on corrupted data: both histogram
/// bounds stay below EDR.
#[test]
fn histogram_bounds_hold_on_corrupted_data() {
    for seed in 0..20 {
        let mut rng = seeded_rng(seed + 100);
        let base = trajsim::data::smooth_template(&mut rng, 5, 80, (0.0, 50.0, 0.0, 50.0));
        let noisy = corrupt(&mut rng, &base, &CorruptionConfig::default());
        let (b, n) = (base.normalize(), noisy.normalize());
        let eps = MatchThreshold::new(0.5).unwrap();
        let k = edr(&b, &n, eps);
        let hb = TrajectoryHistogram::build(&b, eps);
        let hn = TrajectoryHistogram::build(&n, eps);
        assert!(histogram_distance(&hb, &hn) <= k);
        assert!(histogram_distance_quick(&hb, &hn) <= histogram_distance(&hb, &hn));
    }
}

/// Theorem 5 on corrupted data: the near triangle inequality holds for
/// triples drawn from realistic trajectories.
#[test]
fn near_triangle_inequality_holds_on_corrupted_data() {
    for seed in 0..15 {
        let mut rng = seeded_rng(seed + 500);
        let a = trajsim::data::smooth_template(&mut rng, 5, 50, (0.0, 50.0, 0.0, 50.0)).normalize();
        let b = corrupt(&mut rng, &a, &CorruptionConfig::default()).normalize();
        let c = trajsim::data::smooth_template(&mut rng, 5, 70, (0.0, 50.0, 0.0, 50.0)).normalize();
        let eps = MatchThreshold::new(0.5).unwrap();
        assert!(edr(&a, &b, eps) + edr(&b, &c, eps) + b.len() >= edr(&a, &c, eps));
    }
}

/// The five-measure line-up used by the efficacy experiments produces
/// finite, non-negative distances on corrupted variable-length pairs.
#[test]
fn measure_lineup_is_total_on_messy_inputs() {
    let mut rng = seeded_rng(4242);
    let a = trajsim::data::smooth_template(&mut rng, 4, 35, (0.0, 10.0, 0.0, 10.0)).normalize();
    let b = corrupt(&mut rng, &a, &CorruptionConfig::default()).normalize();
    let eps = MatchThreshold::new(0.25).unwrap();
    for m in Measure::lineup(eps) {
        let d = m.distance(&a, &b);
        assert!(
            d.is_finite() && d >= 0.0,
            "{} produced {d}",
            TrajectoryMeasure::<2>::name(&m)
        );
    }
}
