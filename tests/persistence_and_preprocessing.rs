//! Integration tests for the adoption-surface features: CSV/binary
//! persistence and trajectory preprocessing, driven through the facade
//! and combined with retrieval (what a downstream user actually does:
//! load, clean, search).

use trajsim::io::{read_binary, read_csv, write_binary, write_csv};
use trajsim::prelude::*;

fn sample_db() -> Dataset<2> {
    trajsim::data::nhl_like(3, 40)
}

#[test]
fn csv_roundtrip_preserves_search_results() {
    let db = sample_db();
    let mut buf = Vec::new();
    write_csv(&mut buf, &db).unwrap();
    let back: Dataset<2> = read_csv(&buf[..]).unwrap();
    assert_eq!(back.len(), db.len());

    // Identical search results on the roundtripped data.
    let (a, b) = (db.normalize(), back.normalize());
    let eps = MatchThreshold::new(0.5).unwrap();
    let q = a.trajectories()[7].clone();
    assert_eq!(
        SequentialScan::new(&a, eps).knn(&q, 5).distances(),
        SequentialScan::new(&b, eps).knn(&q, 5).distances()
    );
}

#[test]
fn binary_roundtrip_is_bit_exact_at_scale() {
    let db = trajsim::data::mixed_like(9, 60);
    let mut buf = Vec::new();
    write_binary(&mut buf, &db).unwrap();
    let back: Dataset<2> = read_binary(&buf[..]).unwrap();
    assert_eq!(back, db);
    // The binary form is much denser than CSV.
    let mut csv = Vec::new();
    write_csv(&mut csv, &db).unwrap();
    assert!(buf.len() < csv.len());
}

#[test]
fn preprocessing_pipeline_before_search() {
    // Load -> smooth sensor jitter -> resample to a common length ->
    // normalize -> search. The pipeline must preserve neighbour structure
    // for clean data.
    let raw = sample_db();
    let cleaned: Dataset<2> = raw
        .trajectories()
        .iter()
        .map(|t| t.smooth(1).resample(64).expect("non-empty"))
        .collect();
    assert!(cleaned.iter().all(|(_, t)| t.len() == 64));
    let cleaned = cleaned.normalize();
    let eps = MatchThreshold::new(0.5).unwrap();
    let q = cleaned.trajectories()[0].clone();
    let r = SequentialScan::new(&cleaned, eps).knn(&q, 3);
    assert_eq!(r.neighbors[0].id, 0);
    assert_eq!(r.neighbors[0].dist, 0);
}

#[test]
fn simplification_shrinks_storage_but_keeps_shape() {
    let db = sample_db();
    let t = &db.trajectories()[0];
    let simplified = t.simplify(0.5);
    assert!(simplified.len() <= t.len());
    // The simplified trajectory stays EDR-close to the original after
    // resampling both *by arc length* to a common length (index-based
    // resampling would re-parameterize the sparser polyline differently
    // and mask the comparison).
    let eps = MatchThreshold::new(1.0).unwrap();
    let a = t.resample_by_arc_length(50).unwrap();
    let b = simplified.resample_by_arc_length(50).unwrap();
    let d = edr(&a, &b, eps);
    assert!(
        d <= 10,
        "simplification changed the shape too much: EDR {d}"
    );
}

#[test]
fn lcss_engine_available_through_facade() {
    let db = sample_db().normalize();
    let eps = MatchThreshold::new(0.5).unwrap();
    let engine = trajsim::prune::LcssKnn::build(&db, eps);
    let q = db.trajectories()[4].clone();
    let r = engine.knn(&q, 3);
    assert_eq!(r.neighbors[0].id, 4);
    assert_eq!(r.neighbors[0].dist, 0.0);
    let truth = trajsim::prune::lcss_sequential_scan(&db, eps, &q, 3);
    let got: Vec<f64> = r.neighbors.iter().map(|n| n.dist).collect();
    let want: Vec<f64> = truth.iter().map(|n| n.dist).collect();
    assert_eq!(got, want);
}

#[test]
fn subtrajectory_search_through_facade() {
    // Splice a known pattern into a longer track and find it.
    let pattern = Trajectory2::from_xy(&[(0.0, 0.0), (1.0, 1.0), (2.0, 0.0), (3.0, 1.0)]);
    let mut points: Vec<trajsim::core::Point2> = (0..30)
        .map(|i| trajsim::core::Point2::xy(100.0 + i as f64, -50.0))
        .collect();
    for (j, p) in pattern.iter().enumerate() {
        points[12 + j] = *p;
    }
    let track = Trajectory2::new(points);
    let eps = MatchThreshold::new(0.25).unwrap();
    let matches = trajsim::distance::edr_find_matches(&track, &pattern, eps, 0);
    assert_eq!(matches.len(), 1);
    assert_eq!(matches[0].start, 12);
    assert_eq!(matches[0].end, 16);
}
