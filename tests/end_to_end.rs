//! Cross-crate integration tests: data generation → normalization →
//! every retrieval engine → identical answers, plus the range query and
//! efficacy pipelines, all through the public facade API.

use trajsim::data;
use trajsim::distance::Measure;
use trajsim::eval;
use trajsim::prelude::*;
use trajsim::prune::{
    range_query, CombinedConfig, HistogramVariant, NearTriangleKnn, PruneOrder, QgramVariant,
    ScanMode,
};

fn small_nhl() -> Dataset<2> {
    data::nhl_like(11, 150).normalize()
}

fn eps_for(db: &Dataset<2>) -> MatchThreshold {
    MatchThreshold::new(trajsim::core::max_std_dev(db.trajectories()).unwrap()).unwrap()
}

#[test]
fn every_engine_agrees_with_sequential_scan() {
    let db = small_nhl();
    let eps = eps_for(&db);
    let k = 7;
    let queries: Vec<Trajectory2> = (0..5).map(|i| db.trajectories()[i * 29].clone()).collect();
    let scan = SequentialScan::new(&db, eps);
    let truth: Vec<Vec<usize>> = queries.iter().map(|q| scan.knn(q, k).distances()).collect();

    let engines: Vec<Box<dyn KnnEngine<2>>> = vec![
        Box::new(SequentialScan::new(&db, eps).with_early_abandon()),
        Box::new(QgramKnn::build(&db, eps, 1, QgramVariant::IndexedRtree)),
        Box::new(QgramKnn::build(
            &db,
            eps,
            2,
            QgramVariant::IndexedBtree { dim: 1 },
        )),
        Box::new(QgramKnn::build(&db, eps, 1, QgramVariant::MergeJoin2d)),
        Box::new(QgramKnn::build(
            &db,
            eps,
            3,
            QgramVariant::MergeJoin1d { dim: 0 },
        )),
        Box::new(HistogramKnn::build(
            &db,
            eps,
            HistogramVariant::Grid { delta: 1 },
            ScanMode::Sorted,
        )),
        Box::new(HistogramKnn::build(
            &db,
            eps,
            HistogramVariant::PerDimension,
            ScanMode::Sequential,
        )),
        Box::new(NearTriangleKnn::build(&db, eps, 30)),
        Box::new(CombinedKnn::build(
            &db,
            eps,
            CombinedConfig {
                max_triangle: 30,
                ..Default::default()
            },
        )),
        Box::new(CombinedKnn::build(
            &db,
            eps,
            CombinedConfig {
                order: PruneOrder::NQH,
                histogram: HistogramVariant::Grid { delta: 2 },
                qgram_q: 2,
                max_triangle: 10,
            },
        )),
    ];
    for engine in &engines {
        for (qi, q) in queries.iter().enumerate() {
            assert_eq!(
                engine.knn(q, k).distances(),
                truth[qi],
                "{} diverged on query {qi}",
                engine.name()
            );
        }
    }
}

#[test]
fn range_query_is_consistent_with_knn() {
    let db = small_nhl();
    let eps = eps_for(&db);
    let q = db.trajectories()[42].clone();
    let scan = SequentialScan::new(&db, eps);
    let nn = scan.knn(&q, 10);
    // A range query at the 10th distance must return at least those 10.
    let radius = nn.neighbors.last().unwrap().dist;
    let hits = range_query(&db, eps, &q, radius, 1);
    assert!(hits.len() >= 10);
    assert!(hits.iter().all(|h| h.dist <= radius));
    // And the nearest hit is the k-NN winner.
    assert_eq!(hits[0].dist, nn.neighbors[0].dist);
}

#[test]
fn efficacy_pipeline_runs_end_to_end() {
    let herds = data::cm_like(5).normalize();
    let eps = MatchThreshold::quarter_of_max_std(
        trajsim::core::max_std_dev(herds.dataset().trajectories()).unwrap(),
    )
    .unwrap();
    // Clustering (Table 1 machinery).
    let (correct, total) = eval::correct_pair_partitions(&herds, &Measure::Edr { eps });
    assert_eq!(total, 10);
    assert!(
        correct >= 8,
        "EDR should separate nearly all CM pairs, got {correct}"
    );
    // Classification (Table 2 machinery) on a corrupted copy.
    let noisy = data::corrupt_dataset(
        &mut data::seeded_rng(123),
        &herds,
        &data::CorruptionConfig::default(),
    )
    .normalize();
    let err = eval::loo_error_rate(&noisy, &Measure::Edr { eps });
    assert!(err <= 0.4, "EDR error rate under noise too high: {err}");
}

#[test]
fn normalization_makes_search_translation_invariant() {
    let db = small_nhl();
    let eps = eps_for(&db);
    let scan = SequentialScan::new(&db, eps);
    let q = db.trajectories()[7].clone();
    // Shift and scale the query arbitrarily; after normalization the
    // answer is identical.
    let shifted = Trajectory2::from_xy(
        &q.points()
            .iter()
            .map(|p| (p.x() * 37.0 + 1000.0, p.y() * 0.01 - 5.0))
            .collect::<Vec<_>>(),
    )
    .normalize();
    assert_eq!(
        scan.knn(&q, 5).distances(),
        scan.knn(&shifted, 5).distances()
    );
}

#[test]
fn higher_dimensional_trajectories_work_through_the_stack() {
    use trajsim::core::{Point, Trajectory};
    // 3-d trajectories through EDR and the histogram lower bound.
    let a: Trajectory<3> = (0..30)
        .map(|i| Point::new([i as f64, (i * 2) as f64, -(i as f64)]))
        .collect();
    let mut pts: Vec<Point<3>> = a.points().to_vec();
    pts[10] = Point::new([999.0, 999.0, 999.0]);
    let b = Trajectory::new(pts);
    let eps = MatchThreshold::new(0.5).unwrap();
    assert_eq!(trajsim::distance::edr(&a, &b, eps), 1);
    let ha = trajsim::histogram::TrajectoryHistogram::build(&a, eps);
    let hb = trajsim::histogram::TrajectoryHistogram::build(&b, eps);
    assert!(trajsim::histogram::histogram_distance(&ha, &hb) <= 1);
}
