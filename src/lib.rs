//! # trajsim — Robust and Fast Similarity Search for Moving Object Trajectories
//!
//! A full Rust implementation of Chen, Özsu, Oria (SIGMOD 2005): the **EDR**
//! (Edit Distance on Real sequence) trajectory distance, the baseline
//! distance functions it is evaluated against (Euclidean, DTW, ERP, LCSS),
//! and the three no-false-dismissal pruning techniques for fast k-NN
//! retrieval (mean-value Q-grams, the near triangle inequality, and
//! trajectory histograms), individually and combined.
//!
//! This crate is a facade: it re-exports the workspace crates so `use
//! trajsim::prelude::*` gives you everything. See the README for an
//! architecture overview and `DESIGN.md` for the paper-to-module map.
//!
//! ## Quickstart
//!
//! ```
//! use trajsim::prelude::*;
//!
//! // The worked example from the paper (§2): four 1-d trajectories.
//! let q = Trajectory1::from_values(&[1.0, 2.0, 3.0, 4.0]);
//! let s = Trajectory1::from_values(&[1.0, 100.0, 2.0, 3.0, 4.0]);
//! let eps = MatchThreshold::new(1.0).unwrap();
//! // S differs from Q by one noisy insertion -> EDR distance 1.
//! assert_eq!(edr(&q, &s, eps), 1);
//! ```

pub use trajsim_art as art;
pub use trajsim_core as core;
pub use trajsim_data as data;
pub use trajsim_distance as distance;
pub use trajsim_eval as eval;
pub use trajsim_histogram as histogram;
pub use trajsim_index as index;
pub use trajsim_io as io;
pub use trajsim_obs as obs;
pub use trajsim_parallel as parallel;
pub use trajsim_prune as prune;
pub use trajsim_qgram as qgram;
pub use trajsim_related as related;

/// One-stop import of the commonly used API.
pub mod prelude {
    pub use trajsim_core::{
        Dataset, LabeledDataset, MatchThreshold, Point, Point1, Point2, Trajectory, Trajectory1,
        Trajectory2,
    };
    pub use trajsim_distance::{
        dtw, edr, edr_within, erp, euclidean, euclidean_sliding, lcss, TrajectoryMeasure,
    };
    pub use trajsim_histogram::{histogram_distance, TrajectoryHistogram};
    pub use trajsim_prune::{
        CombinedKnn, HistogramKnn, KnnEngine, KnnResult, NearTriangleKnn, PruneOrder, QgramKnn,
        QueryStats, SequentialScan, StageTimings,
    };
    pub use trajsim_qgram::{mean_value_qgrams, qgram_count_lower_bound};
}
